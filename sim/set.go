package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"civect/internal/core"
	"civect/internal/mem"
)

// PointOpts is the option list of one configuration point in a Set:
// exactly the options a single Session would be built with.
type PointOpts []Option

// PointResult pairs one Set point with its outcome, streamed by
// Sweep. Exactly one of Result and Err is meaningful — except on
// mid-sweep cancellation, where a partial Result accompanies the
// context error, lane by lane.
type PointResult struct {
	// Index is the point's position in the NewSet argument list.
	Index int
	// Result is the point's outcome (partial on cancellation).
	Result *Result
	// Err is the point's failure, if any.
	Err error
}

// setPoint is one validated configuration point.
type setPoint struct {
	cfg Config
	// opts re-applies the point's options when it must run as an
	// individual Session (observer or trace points).
	opts PointOpts
	// session marks points that run as individual Sessions: observers
	// and trace journals are per-session side effects, so such points
	// are excluded from lockstep batching and result coalescing.
	session bool
}

// Set is a multi-configuration sweep over one workload: the supported
// way to run N configuration points of the same program. Build one
// with NewSet, then stream the results with Sweep (or collect them
// with Run). Compared to building N Sessions, a Set shares the decoded
// program and per-PC metadata across all points, steps up to Width
// points in cache-friendly lockstep (the batched engine,
// internal/core's BatchProc), and simulates exact duplicate
// configurations once — per-point results are bit-identical to
// individual sequential Sessions either way.
//
// A Set is single-use and, once swept, sealed; the Width and Workers
// knobs must be set before Sweep is called. Sets are not safe for
// concurrent use (the Sweep result channel is).
type Set struct {
	// Width is the number of configuration lanes stepped in lockstep
	// per wave: 0 (or negative) selects the automatic width, 1 runs
	// every point as its own sequential session — the legacy
	// behavior, with no lockstep and no duplicate coalescing.
	Width int
	// Workers bounds how many waves (and individual session points)
	// simulate concurrently; 0 or negative uses GOMAXPROCS. Results
	// are bit-identical for every Workers value.
	Workers int

	w      *Workload
	shared *core.SharedProgram
	points []setPoint
	swept  bool
}

// autoWidth is the automatic lockstep width: wide enough to amortize
// the shared program state across lanes, narrow enough that the
// per-lane pipeline state of a whole wave stays cache-resident.
const autoWidth = 8

// NewSet builds a sweep set over workload w with one point per option
// list, validating every point eagerly exactly as New would: a nil or
// invalid workload, an invalid option combination or an invalid
// configuration on any point all surface here, so a Set that
// constructs is guaranteed runnable.
func NewSet(w *Workload, points ...PointOpts) (*Set, error) {
	if w == nil {
		return nil, errors.New("sim: nil workload")
	}
	if len(points) == 0 {
		return nil, errors.New("sim: a set needs at least one point")
	}
	shared, err := core.ShareProgram(w.prog)
	if err != nil {
		return nil, err
	}
	s := &Set{w: w, shared: shared, points: make([]setPoint, len(points))}
	for i, opts := range points {
		st := settings{cfg: DefaultConfig(CI)}
		for _, o := range opts {
			if o != nil {
				o(&st)
			}
		}
		if st.err != nil {
			return nil, fmt.Errorf("sim: set point %d: %w", i, st.err)
		}
		if st.traceW == nil && (st.traceLevel != 0 || st.traceWindowed) {
			return nil, fmt.Errorf("sim: set point %d: WithTraceLevel/WithTraceWindow require WithTrace", i)
		}
		if err := st.cfg.Validate(); err != nil {
			return nil, fmt.Errorf("sim: set point %d: %w", i, err)
		}
		s.points[i] = setPoint{
			cfg:     st.cfg,
			opts:    opts,
			session: st.obs != nil || st.traceW != nil,
		}
	}
	return s, nil
}

// Len returns the number of configuration points.
func (s *Set) Len() int { return len(s.points) }

// Workload returns the workload the set sweeps.
func (s *Set) Workload() *Workload { return s.w }

// Run sweeps the set to completion and collects the results in point
// order: the blocking convenience over Sweep. The returned error is
// the first point error in index order (results for the other points
// are still returned, partial ones included).
func (s *Set) Run(ctx context.Context) ([]*Result, error) {
	results := make([]*Result, len(s.points))
	var firstErr error
	firstIdx := len(s.points)
	for pr := range s.Sweep(ctx) {
		results[pr.Index] = pr.Result
		if pr.Err != nil && pr.Index < firstIdx {
			firstErr, firstIdx = pr.Err, pr.Index
		}
	}
	return results, firstErr
}

// sweepUnit is one schedulable piece of a sweep: either a lockstep
// wave of distinct-configuration lanes (each lane carrying every point
// index that resolves to its configuration) or a single point that
// must run as an individual Session.
type sweepUnit struct {
	// lanes[i] lists the point indices coalesced onto lane i; the
	// lane simulates points[lanes[i][0]].cfg.
	lanes [][]int
	// single is the session point's index (lanes nil).
	single int
}

// Sweep simulates every point and streams the per-point results over
// the returned channel in completion order; the channel closes once
// all points have finished. Up to Width distinct configurations step
// in lockstep per wave and up to Workers waves run concurrently.
// Points whose configurations are exactly equal are simulated once
// per wave and their results fanned out (the simulator is
// deterministic, so this is observationally identical to running each
// — Width 1 disables both lockstep and this coalescing); observer and
// trace points always run as individual sessions.
//
// Cancelling ctx stops every running lane at its next cycle boundary:
// such points deliver partial, well-formed Results together with the
// context error, exactly as Session.Run does. A Set is single-use;
// sweeping again yields every point with an error wrapping
// ErrSessionEnded.
func (s *Set) Sweep(ctx context.Context) <-chan PointResult {
	out := make(chan PointResult, len(s.points))
	if s.swept {
		for i := range s.points {
			out <- PointResult{Index: i, Err: fmt.Errorf("%w: set already swept", ErrSessionEnded)}
		}
		close(out)
		return out
	}
	s.swept = true

	width := s.Width
	if width < 1 {
		width = autoWidth
	}
	workers := s.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Partition the points into units: session points run alone;
	// the rest coalesce by exact configuration (first-occurrence
	// order) and fill lockstep waves of up to width lanes.
	var units []sweepUnit
	var wave [][]int
	if width == 1 {
		for i, pt := range s.points {
			if pt.session {
				units = append(units, sweepUnit{single: i})
			} else {
				units = append(units, sweepUnit{lanes: [][]int{{i}}})
			}
		}
	} else {
		laneOf := make(map[Config]int, len(s.points))
		flush := func() {
			if len(wave) > 0 {
				units = append(units, sweepUnit{lanes: wave})
				wave = nil
				laneOf = make(map[Config]int, len(s.points))
			}
		}
		for i, pt := range s.points {
			if pt.session {
				units = append(units, sweepUnit{single: i})
				continue
			}
			if li, ok := laneOf[pt.cfg]; ok {
				wave[li] = append(wave[li], i)
				continue
			}
			laneOf[pt.cfg] = len(wave)
			wave = append(wave, []int{i})
			if len(wave) == width {
				flush()
			}
		}
		flush()
	}

	unitCh := make(chan sweepUnit)
	var wg sync.WaitGroup
	for k := 0; k < workers && k < len(units); k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range unitCh {
				s.runUnit(ctx, u, out)
			}
		}()
	}
	go func() {
		for _, u := range units {
			unitCh <- u
		}
		close(unitCh)
		wg.Wait()
		close(out)
	}()
	return out
}

// runUnit simulates one sweep unit, delivering a PointResult for every
// point index the unit covers. A panic — possible only via
// user-supplied hooks on session points, but guarded for waves too —
// is recovered and delivered as a *PanicError to the unit's
// undelivered points.
func (s *Set) runUnit(ctx context.Context, u sweepUnit, out chan<- PointResult) {
	delivered := make(map[int]bool)
	defer func() {
		if v := recover(); v != nil {
			err := &PanicError{Value: v, Stack: debug.Stack()}
			if u.lanes == nil {
				if !delivered[u.single] {
					out <- PointResult{Index: u.single, Err: err}
				}
				return
			}
			for _, lane := range u.lanes {
				for _, idx := range lane {
					if !delivered[idx] {
						out <- PointResult{Index: idx, Err: err}
					}
				}
			}
		}
	}()

	if u.lanes == nil {
		idx := u.single
		sess, err := New(s.w, s.points[idx].opts...)
		if err != nil {
			delivered[idx] = true
			out <- PointResult{Index: idx, Err: err}
			return
		}
		res, err := sess.Run(ctx)
		delivered[idx] = true
		out <- PointResult{Index: idx, Result: res, Err: err}
		return
	}

	cfgs := make([]Config, len(u.lanes))
	mems := make([]*mem.Memory, len(u.lanes))
	for li, lane := range u.lanes {
		cfgs[li] = s.points[lane[0]].cfg
		mems[li] = s.w.newMem()
	}
	bp, err := core.NewBatchProc(s.shared, cfgs, mems)
	if err != nil {
		for _, lane := range u.lanes {
			for _, idx := range lane {
				delivered[idx] = true
				out <- PointResult{Index: idx, Err: err}
			}
		}
		return
	}
	t0 := time.Now()
	runErr := bp.RunContext(ctx, func(li int, stats *core.Stats, err error) {
		wall := time.Since(t0)
		for _, idx := range u.lanes[li] {
			delivered[idx] = true
			if stats == nil {
				out <- PointResult{Index: idx, Err: err}
				continue
			}
			st := *stats // each point owns its stats copy
			out <- PointResult{
				Index:  idx,
				Result: newResult(s.w, cfgs[li], &st, err != nil, wall),
				Err:    err,
			}
		}
	})
	// Every lane was reported through the callback (hard errors with
	// nil stats, cancellation with partials); runErr only restates the
	// first of them, so nothing is left to deliver here.
	_ = runErr
}
