package sim

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Batch runs sessions under one shared concurrency bound. It is the
// single worker pool of the stack: the experiment harness's memoized
// sweeps, ciexp's -workers flag and any embedding driver all bound
// their simulations through one Batch instead of rolling their own
// semaphores. Safe for concurrent use.
type Batch struct {
	sem     chan struct{}
	running atomic.Int64
	peak    atomic.Int64
}

// NewBatch returns a batch running at most workers sessions at once
// (workers <= 0 uses GOMAXPROCS; 1 fully serializes).
func NewBatch(workers int) *Batch {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Batch{sem: make(chan struct{}, workers)}
}

// Workers returns the batch's concurrency bound.
func (b *Batch) Workers() int { return cap(b.sem) }

// MaxConcurrent returns the highest number of sessions that have run
// simultaneously on this batch (never above Workers).
func (b *Batch) MaxConcurrent() int { return int(b.peak.Load()) }

// PanicError is the per-job error a Batch returns when building or
// running a session panicked (for example in a user-supplied Observer
// hook): the panic is recovered inside the batch so one bad job cannot
// crash the process or the other jobs sharing the pool.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace, captured at
	// recovery.
	Stack []byte
}

// Error renders the panic value; the full stack is available via Stack.
func (e *PanicError) Error() string {
	return fmt.Sprintf("sim: session panicked: %v", e.Value)
}

// Run builds and runs one session within the batch's concurrency
// bound, blocking until a worker slot frees up (or ctx is cancelled
// while waiting). Semantics match Session.Run: on mid-run cancellation
// it returns the partial Result together with ctx.Err(). A panic while
// building or running the session — including one raised by an
// Observer hook — is recovered and returned as a *PanicError instead
// of crashing the process.
func (b *Batch) Run(ctx context.Context, w *Workload, opts ...Option) (*Result, error) {
	return b.run(ctx, func() (*Session, error) { return New(w, opts...) })
}

// Resume is Run for a checkpointed session: it rebuilds the session
// from the checkpoint file (see Resume) within the batch's concurrency
// bound and runs it to completion, with the same cancellation and
// panic-recovery semantics as Run.
func (b *Batch) Resume(ctx context.Context, path string, opts ...Option) (*Result, error) {
	return b.run(ctx, func() (*Session, error) { return Resume(path, opts...) })
}

// run acquires a worker slot, builds the session and runs it, turning
// panics into *PanicError.
func (b *Batch) run(ctx context.Context, build func() (*Session, error)) (res *Result, err error) {
	select {
	case b.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-b.sem }()
	n := b.running.Add(1)
	defer b.running.Add(-1)
	for {
		peak := b.peak.Load()
		if n <= peak || b.peak.CompareAndSwap(peak, n) {
			break
		}
	}
	defer func() {
		if v := recover(); v != nil {
			res, err = nil, &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	s, err := build()
	if err != nil {
		return nil, err
	}
	return s.Run(ctx)
}

// Job names one simulation for Batch.Stream: a registry workload plus
// the session options to run it under.
type Job struct {
	// Workload is the registry name, resolved with Load.
	Workload string
	// Options configure the session.
	Options []Option
	// Tag is an opaque label echoed on the job's BatchResult.
	Tag string
}

// BatchResult pairs a finished Job with its outcome. Exactly one of
// Result and Err is meaningful — except on mid-run cancellation, where
// a partial Result accompanies the context error.
type BatchResult struct {
	// Job is the input job, Tag included.
	Job Job
	// Result is the job's outcome (partial on cancellation).
	Result *Result
	// Err is the job's failure, if any.
	Err error
}

// Stream launches every job and streams their results over the
// returned channel in completion order, at most Workers at a time; the
// channel closes once all jobs have finished. Cancelling ctx stops
// running sessions at their next cycle boundary (their results arrive
// partial, with the context error) and fails jobs still waiting for a
// slot.
func (b *Batch) Stream(ctx context.Context, jobs []Job) <-chan BatchResult {
	// Buffered to the job count so a consumer that stops reading early
	// never strands the producer goroutines.
	out := make(chan BatchResult, len(jobs))
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j Job) {
			defer wg.Done()
			w, err := Load(j.Workload)
			if err != nil {
				out <- BatchResult{Job: j, Err: err}
				return
			}
			res, err := b.Run(ctx, w, j.Options...)
			out <- BatchResult{Job: j, Result: res, Err: err}
		}(j)
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}
