package sim

import (
	"fmt"

	"civect/internal/core"
)

// settings accumulates option effects before New validates them as a
// whole; options that can fail record the first error here so New can
// return it instead of panicking.
type settings struct {
	cfg           Config
	obs           Observer
	progressEvery uint64
	err           error
}

// Option configures a Session at construction; options apply in the
// order given, over the Table 1 defaults for the session's mode.
type Option func(*settings)

// WithMode selects the machine organisation (default CI).
func WithMode(m Mode) Option {
	return func(s *settings) { s.cfg.Mode = core.Mode(m) }
}

// WithPorts sets the number of L1 data cache ports (the paper uses 1
// or 2).
func WithPorts(n int) Option {
	return func(s *settings) { s.cfg.DL1Ports = n }
}

// WithRegs sets the physical register file size (0 = unbounded) and
// applies the paper's reorder-buffer sizing rule: 256 window entries,
// grown to the register count past 256, 1024 for the unbounded file.
func WithRegs(n int) Option {
	return func(s *settings) {
		s.cfg.PhysRegs = n
		s.cfg.WindowSize = core.WindowFor(n)
	}
}

// WithReplicas sets the replicas per vectorized instruction (the paper
// sweeps 1/2/4/8; default 4).
func WithReplicas(n int) Option {
	return func(s *settings) { s.cfg.Replicas = n }
}

// WithStridedPCs bounds the stridedPC list each rename entry
// propagates (Figure 4 sweeps 1/2/4; default 2).
func WithStridedPCs(n int) Option {
	return func(s *settings) { s.cfg.StridedPCsPerEntry = n }
}

// WithSpecMem gives replicas a separate speculative data memory of the
// given number of positions (§2.4.6; 0, the default, keeps them in the
// register file).
func WithSpecMem(positions int) Option {
	return func(s *settings) { s.cfg.SpecMemSize = positions }
}

// WithSpecMemLatency sets the speculative data memory access latency
// in cycles (default 2; §3.2 also evaluates 5).
func WithSpecMemLatency(cycles int) Option {
	return func(s *settings) { s.cfg.SpecMemLat = cycles }
}

// WithDAEC enables or disables the Dead Association Elimination
// Counter register reclamation (§2.4.2; enabled by default — disabling
// it is the register-pressure ablation).
func WithDAEC(enabled bool) Option {
	return func(s *settings) { s.cfg.DisableDAEC = !enabled }
}

// WithEngine selects the simulation engine (default EngineFastForward;
// all engines produce bit-identical statistics).
func WithEngine(e Engine) Option {
	return func(s *settings) {
		switch e {
		case EngineFastForward:
			s.cfg.NaiveScheduler = false
			s.cfg.NoFastForward = false
		case EngineEvent:
			s.cfg.NaiveScheduler = false
			s.cfg.NoFastForward = true
		case EngineNaive:
			s.cfg.NaiveScheduler = true
		default:
			if s.err == nil {
				s.err = fmt.Errorf("sim: invalid engine %d", int(e))
			}
		}
	}
}

// WithInstrBudget bounds the run to n committed instructions (0, the
// default, runs to the program's halt).
func WithInstrBudget(n uint64) Option {
	return func(s *settings) { s.cfg.MaxInstr = n }
}

// WithObserver registers o to receive the session's batched progress
// taps (commit batches, fast-forward jumps, and progress reports every
// progressEvery committed instructions; 0 disables progress reports).
// At most one observer is supported; the last registration wins.
func WithObserver(o Observer, progressEvery uint64) Option {
	return func(s *settings) {
		s.obs = o
		s.progressEvery = progressEvery
	}
}

// WithConfigPatch applies patch to the session's configuration after
// the preceding options: the escape hatch to every core parameter the
// named options do not cover. The patched configuration is still
// validated as a whole by New.
func WithConfigPatch(patch func(*Config)) Option {
	return func(s *settings) {
		if patch != nil {
			patch(&s.cfg)
		}
	}
}
