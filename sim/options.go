package sim

import (
	"fmt"
	"io"

	"civect/internal/core"
	"civect/internal/trace"
)

// settings accumulates option effects before New validates them as a
// whole; options that can fail record the first error here so New can
// return it instead of panicking.
type settings struct {
	cfg           Config
	obs           Observer
	progressEvery uint64
	traceW        io.Writer
	traceLevel    TraceLevel
	traceFirst    uint64
	traceLast     uint64
	traceWindowed bool
	sampling      *SamplingConfig
	ckptPath      string
	ckptEvery     uint64
	err           error
}

// Option configures a Session at construction; options apply in the
// order given, over the Table 1 defaults for the session's mode.
type Option func(*settings)

// WithMode selects the machine organisation (default CI).
func WithMode(m Mode) Option {
	return func(s *settings) { s.cfg.Mode = core.Mode(m) }
}

// WithPorts sets the number of L1 data cache ports (the paper uses 1
// or 2).
func WithPorts(n int) Option {
	return func(s *settings) { s.cfg.DL1Ports = n }
}

// WithRegs sets the physical register file size (0 = unbounded) and
// applies the paper's reorder-buffer sizing rule: 256 window entries,
// grown to the register count past 256, 1024 for the unbounded file.
func WithRegs(n int) Option {
	return func(s *settings) {
		s.cfg.PhysRegs = n
		s.cfg.WindowSize = core.WindowFor(n)
	}
}

// WithReplicas sets the replicas per vectorized instruction (the paper
// sweeps 1/2/4/8; default 4).
func WithReplicas(n int) Option {
	return func(s *settings) { s.cfg.Replicas = n }
}

// WithStridedPCs bounds the stridedPC list each rename entry
// propagates (Figure 4 sweeps 1/2/4; default 2).
func WithStridedPCs(n int) Option {
	return func(s *settings) { s.cfg.StridedPCsPerEntry = n }
}

// WithSpecMem gives replicas a separate speculative data memory of the
// given number of positions (§2.4.6; 0, the default, keeps them in the
// register file).
func WithSpecMem(positions int) Option {
	return func(s *settings) { s.cfg.SpecMemSize = positions }
}

// WithSpecMemLatency sets the speculative data memory access latency
// in cycles (default 2; §3.2 also evaluates 5).
func WithSpecMemLatency(cycles int) Option {
	return func(s *settings) { s.cfg.SpecMemLat = cycles }
}

// WithDAEC enables or disables the Dead Association Elimination
// Counter register reclamation (§2.4.2; enabled by default — disabling
// it is the register-pressure ablation).
func WithDAEC(enabled bool) Option {
	return func(s *settings) { s.cfg.DisableDAEC = !enabled }
}

// WithEngine selects the simulation engine (default EngineFastForward;
// all engines produce bit-identical statistics).
func WithEngine(e Engine) Option {
	return func(s *settings) {
		switch e {
		case EngineFastForward:
			s.cfg.NaiveScheduler = false
			s.cfg.NoFastForward = false
		case EngineEvent:
			s.cfg.NaiveScheduler = false
			s.cfg.NoFastForward = true
		case EngineNaive:
			s.cfg.NaiveScheduler = true
		default:
			if s.err == nil {
				s.err = fmt.Errorf("sim: invalid engine %d", int(e))
			}
		}
	}
}

// WithInstrBudget bounds the run to n committed instructions (0, the
// default, runs to the program's halt).
func WithInstrBudget(n uint64) Option {
	return func(s *settings) { s.cfg.MaxInstr = n }
}

// WithObserver registers o to receive the session's batched progress
// taps (commit batches, fast-forward jumps, and progress reports every
// progressEvery committed instructions; 0 disables progress reports).
// At most one observer is supported; the last registration wins.
func WithObserver(o Observer, progressEvery uint64) Option {
	return func(s *settings) {
		s.obs = o
		s.progressEvery = progressEvery
	}
}

// TraceLevel selects how much a session's cycle-trace journal records;
// see WithTrace. Levels nest: each one records everything the level
// below it does.
type TraceLevel int

// The three trace levels. The zero value means "default", which is
// TracePipeline.
const (
	// TraceCommits records only committed instructions — the cheapest
	// journal that still replays committed-instruction statistics
	// exactly.
	TraceCommits TraceLevel = TraceLevel(trace.LevelCommits)
	// TracePipeline (the default) adds fetch, rename, issue and squash
	// events. Pipeline-level journals are engine-independent: every
	// engine produces byte-identical journals for the same
	// configuration.
	TracePipeline TraceLevel = TraceLevel(trace.LevelPipeline)
	// TraceFull adds engine-level events (fast-forward cycle jumps);
	// full journals are only byte-comparable between runs of the same
	// engine.
	TraceFull TraceLevel = TraceLevel(trace.LevelFull)
)

// String names the trace level (commits, pipeline, full).
func (l TraceLevel) String() string { return trace.Level(l).String() }

// ParseTraceLevel inverts TraceLevel.String.
func ParseTraceLevel(s string) (TraceLevel, error) {
	l, err := trace.ParseLevel(s)
	return TraceLevel(l), err
}

// WithTrace records the session's cycle-event journal into w, in the
// deterministic binary format of docs/TRACE_FORMAT.md (default level
// TracePipeline; see WithTraceLevel). The journal's trailer is written
// when the session seals — after Run returns or Step ends the run — so
// the session must be driven to its end for the journal to be
// complete; Run and Step surface journal write errors at that point.
// Recording never perturbs simulation results.
func WithTrace(w io.Writer) Option {
	return func(s *settings) {
		if w == nil {
			if s.err == nil {
				s.err = fmt.Errorf("sim: WithTrace requires a non-nil writer")
			}
			return
		}
		s.traceW = w
	}
}

// WithTraceLevel sets the journal's level (default TracePipeline).
// Requires WithTrace.
func WithTraceLevel(l TraceLevel) Option {
	return func(s *settings) {
		if l < TraceCommits || l > TraceFull {
			if s.err == nil {
				s.err = fmt.Errorf("sim: invalid trace level %d", int(l))
			}
			return
		}
		s.traceLevel = l
	}
}

// WithTraceWindow restricts the journal to events in cycles
// [first, last] (last == 0 leaves the window open-ended). The journal
// is marked windowed, which relaxes the replayer's pipeline-discipline
// checks. Requires WithTrace.
func WithTraceWindow(first, last uint64) Option {
	return func(s *settings) {
		if last != 0 && last < first {
			if s.err == nil {
				s.err = fmt.Errorf("sim: invalid trace window [%d, %d]", first, last)
			}
			return
		}
		s.traceFirst, s.traceLast, s.traceWindowed = first, last, true
	}
}

// WithConfigPatch applies patch to the session's configuration after
// the preceding options: the escape hatch to every core parameter the
// named options do not cover. The patched configuration is still
// validated as a whole by New.
func WithConfigPatch(patch func(*Config)) Option {
	return func(s *settings) {
		if patch != nil {
			patch(&s.cfg)
		}
	}
}
