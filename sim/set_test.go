package sim_test

import (
	"context"
	"errors"
	"testing"

	"civect/sim"
)

// sweepPoints is a representative sweep slice: several distinct
// configurations, one exact duplicate (the coalescing case), across
// modes.
func sweepPoints(budget uint64) []sim.PointOpts {
	return []sim.PointOpts{
		{sim.WithMode(sim.Scalar), sim.WithInstrBudget(budget)},
		{sim.WithMode(sim.CI), sim.WithInstrBudget(budget)},
		{sim.WithMode(sim.CI), sim.WithInstrBudget(budget), sim.WithRegs(512)},
		{sim.WithMode(sim.Vect), sim.WithInstrBudget(budget)},
		{sim.WithMode(sim.CI), sim.WithInstrBudget(budget)}, // duplicate of point 1
		{sim.WithMode(sim.CIIW), sim.WithInstrBudget(budget)},
	}
}

// collect sweeps the set and returns results indexed by point, failing
// the test on any point error.
func collect(t *testing.T, s *sim.Set) []*sim.Result {
	t.Helper()
	results := make([]*sim.Result, s.Len())
	for pr := range s.Sweep(context.Background()) {
		if pr.Err != nil {
			t.Errorf("point %d: %v", pr.Index, pr.Err)
		}
		if pr.Result == nil {
			t.Fatalf("point %d: nil result", pr.Index)
		}
		if results[pr.Index] != nil {
			t.Fatalf("point %d delivered twice", pr.Index)
		}
		results[pr.Index] = pr.Result
	}
	return results
}

// TestSetValidatesEagerly proves NewSet surfaces every invalid input
// at construction: nil workload, empty point list, and per-point
// option or configuration errors (naming the failing point).
func TestSetValidatesEagerly(t *testing.T) {
	w := mustLoad(t, "gcc")
	if _, err := sim.NewSet(nil, sim.PointOpts{}); err == nil {
		t.Error("nil workload must fail")
	}
	if _, err := sim.NewSet(w); err == nil {
		t.Error("empty point list must fail")
	}
	bad := []sim.PointOpts{
		{sim.WithMode(sim.CI)},
		{sim.WithPorts(0)},
	}
	if _, err := sim.NewSet(w, bad...); err == nil {
		t.Error("invalid point option must fail NewSet")
	}
	patch := []sim.PointOpts{
		{sim.WithConfigPatch(func(c *sim.Config) { c.PhysRegs = 8 })},
	}
	if _, err := sim.NewSet(w, patch...); err == nil {
		t.Error("invalid point configuration must fail NewSet")
	}
	if _, err := sim.NewSet(w, sim.PointOpts{sim.WithTraceLevel(sim.TraceCommits)}); err == nil {
		t.Error("trace level without a trace writer must fail NewSet")
	}
}

// TestSweepMatchesSessions is the façade-level differential: every
// point of a batched sweep must produce statistics bit-identical to a
// Session built with the same options, and the width-1 legacy path
// must match too.
func TestSweepMatchesSessions(t *testing.T) {
	w := mustLoad(t, "gcc")
	points := sweepPoints(8_000)

	want := make([]sim.Stats, len(points))
	for i, opts := range points {
		sess, err := sim.New(w, opts...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sess.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Stats
	}

	for _, width := range []int{0, 1, 2} {
		set, err := sim.NewSet(w, points...)
		if err != nil {
			t.Fatal(err)
		}
		set.Width = width
		for i, res := range collect(t, set) {
			if res.Partial {
				t.Errorf("width %d point %d: unexpectedly partial", width, i)
			}
			if res.Stats != want[i] {
				t.Errorf("width %d point %d: sweep stats diverge from a Session run", width, i)
			}
		}
	}
}

// TestSetRun proves the blocking convenience returns results in point
// order.
func TestSetRun(t *testing.T) {
	w := mustLoad(t, "mcf")
	set, err := sim.NewSet(w, sweepPoints(4_000)...)
	if err != nil {
		t.Fatal(err)
	}
	results, err := set.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != set.Len() {
		t.Fatalf("%d results, want %d", len(results), set.Len())
	}
	for i, res := range results {
		if res == nil {
			t.Errorf("point %d: nil result", i)
		}
	}
}

// TestSweepObserverPoint proves a point with an observer runs (as an
// individual session), fires its hooks, and matches the others
// bit-identically.
func TestSweepObserverPoint(t *testing.T) {
	w := mustLoad(t, "gcc")
	var obs countingObserver
	points := []sim.PointOpts{
		{sim.WithMode(sim.CI), sim.WithInstrBudget(5_000)},
		{sim.WithMode(sim.CI), sim.WithInstrBudget(5_000), sim.WithObserver(&obs, 1_000)},
	}
	set, err := sim.NewSet(w, points...)
	if err != nil {
		t.Fatal(err)
	}
	results := collect(t, set)
	if obs.progress == 0 {
		t.Error("observer point must fire progress hooks")
	}
	if results[0].Stats != results[1].Stats {
		t.Error("observer point diverges from its plain twin")
	}
}

// TestSweepCancellation cancels a sweep up front: every point must
// deliver the context error, running points with partial well-formed
// results.
func TestSweepCancellation(t *testing.T) {
	w := mustLoad(t, "gcc")
	set, err := sim.NewSet(w, sweepPoints(0)...) // no budget: runs to halt
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	seen := 0
	for pr := range set.Sweep(ctx) {
		seen++
		if !errors.Is(pr.Err, context.Canceled) {
			t.Errorf("point %d: err = %v, want context.Canceled", pr.Index, pr.Err)
		}
		if pr.Result != nil && !pr.Result.Partial {
			t.Errorf("point %d: canceled result not marked partial", pr.Index)
		}
	}
	if seen != set.Len() {
		t.Errorf("%d points reported, want %d", seen, set.Len())
	}
}

// TestSetSingleUse proves a second Sweep yields every point an error
// wrapping ErrSessionEnded.
func TestSetSingleUse(t *testing.T) {
	w := mustLoad(t, "gcc")
	set, err := sim.NewSet(w, sim.PointOpts{sim.WithInstrBudget(1_000)})
	if err != nil {
		t.Fatal(err)
	}
	collect(t, set)
	seen := 0
	for pr := range set.Sweep(context.Background()) {
		seen++
		if !errors.Is(pr.Err, sim.ErrSessionEnded) {
			t.Errorf("point %d: err = %v, want ErrSessionEnded", pr.Index, pr.Err)
		}
	}
	if seen != set.Len() {
		t.Errorf("%d points reported, want %d", seen, set.Len())
	}
}
