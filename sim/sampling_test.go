package sim_test

import (
	"context"
	"testing"

	"civect/sim"
)

// TestSampledSession runs the sampled pipeline through the façade and
// checks the Result extension's shape and plausibility.
func TestSampledSession(t *testing.T) {
	w := mustLoad(t, "gcc")
	s, err := sim.New(w,
		sim.WithInstrBudget(120_000),
		sim.WithSampling(sim.SamplingConfig{IntervalLen: 5_000, Clusters: 4, Warmup: 2_000}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(1); err == nil {
		t.Fatal("sampled session allowed Step")
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sr := res.Sampled
	if sr == nil {
		t.Fatal("sampled run returned no Sampled extension")
	}
	if sr.TotalInstr != 120_000 {
		t.Errorf("TotalInstr = %d, want 120000", sr.TotalInstr)
	}
	if sr.NumSamples < 1 || sr.NumSamples > 4 {
		t.Errorf("NumSamples = %d", sr.NumSamples)
	}
	if sr.DetailedInstr == 0 || sr.DetailedInstr >= sr.TotalInstr {
		t.Errorf("DetailedInstr = %d of %d: sampling bought nothing", sr.DetailedInstr, sr.TotalInstr)
	}
	ipc, _, ok := sr.Estimate("ipc")
	if !ok || ipc <= 0 {
		t.Errorf("ipc estimate %v (ok=%v)", ipc, ok)
	}
	if res.IPC != ipc {
		t.Errorf("row IPC %v != stitched estimate %v", res.IPC, ipc)
	}
	if res.Instr != sr.TotalInstr {
		t.Errorf("row Instr %d != TotalInstr %d", res.Instr, sr.TotalInstr)
	}
	if sr.EstCycles <= 0 {
		t.Errorf("EstCycles = %v", sr.EstCycles)
	}
	if _, err := s.Run(context.Background()); err == nil {
		t.Fatal("sampled session allowed a second Run")
	}
}

// TestSamplingOptionConflicts checks New's eager validation of the
// sampled mode's incompatibilities.
func TestSamplingOptionConflicts(t *testing.T) {
	w := mustLoad(t, "gcc")
	if _, err := sim.New(w, sim.WithSampling(sim.SamplingConfig{}), sim.WithCheckpoint("/tmp/x.ckpt", 0)); err == nil {
		t.Error("WithSampling+WithCheckpoint must fail")
	}
	if _, err := sim.New(w, sim.WithSampling(sim.SamplingConfig{Clusters: -1})); err == nil {
		t.Error("negative cluster count must fail")
	}
}
