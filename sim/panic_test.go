package sim_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"civect/sim"
)

// panicObserver panics once enough instructions have committed: the
// deterministic stand-in for a buggy user hook (or an injected worker
// fault) blowing up inside a running session.
type panicObserver struct{ after uint64 }

func (o *panicObserver) OnCommitBatch(cycle uint64, committed, reused int) {}
func (o *panicObserver) OnCycleJump(from, to uint64)                       {}
func (o *panicObserver) OnProgress(cycle, committed uint64) {
	if committed >= o.after {
		panic("observer exploded")
	}
}

// TestBatchRecoversPanic: a job that panics mid-run must come back as a
// per-job *PanicError — panic value and stack included — while the jobs
// sharing the pool finish normally and the process survives.
func TestBatchRecoversPanic(t *testing.T) {
	b := sim.NewBatch(2)
	w := mustLoad(t, "gcc")

	_, err := b.Run(context.Background(), w,
		sim.WithMode(sim.CI),
		sim.WithInstrBudget(50_000),
		sim.WithObserver(&panicObserver{after: 1_000}, 500),
	)
	if err == nil {
		t.Fatal("panicking job returned nil error")
	}
	var pe *sim.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panicking job returned %T (%v), want *sim.PanicError", err, err)
	}
	if got := pe.Value; got != "observer exploded" {
		t.Errorf("PanicError.Value = %v, want the panic value", got)
	}
	if !strings.Contains(string(pe.Stack), "OnProgress") {
		t.Errorf("PanicError.Stack does not show the panicking hook:\n%s", pe.Stack)
	}
	if !strings.Contains(err.Error(), "observer exploded") {
		t.Errorf("Error() = %q, does not name the panic value", err)
	}

	// The pool is still healthy: a normal job on the same batch runs to
	// completion.
	res, err := b.Run(context.Background(), w,
		sim.WithMode(sim.CI), sim.WithInstrBudget(10_000))
	if err != nil {
		t.Fatalf("healthy job after a panicked one: %v", err)
	}
	if res.Partial || res.Stats.Committed < 10_000 {
		t.Errorf("healthy job incomplete: partial=%v committed=%d", res.Partial, res.Stats.Committed)
	}
}

// TestBatchStreamRecoversPanic: a panicking job inside a Stream fan-out
// fails alone; every other job still delivers its result and the
// stream closes.
func TestBatchStreamRecoversPanic(t *testing.T) {
	b := sim.NewBatch(2)
	jobs := []sim.Job{
		{Workload: "gcc", Tag: "ok-1", Options: []sim.Option{sim.WithMode(sim.CI), sim.WithInstrBudget(5_000)}},
		{Workload: "gcc", Tag: "boom", Options: []sim.Option{
			sim.WithMode(sim.CI),
			sim.WithInstrBudget(50_000),
			sim.WithObserver(&panicObserver{after: 1_000}, 500),
		}},
		{Workload: "gzip", Tag: "ok-2", Options: []sim.Option{sim.WithMode(sim.CI), sim.WithInstrBudget(5_000)}},
	}
	got := map[string]sim.BatchResult{}
	for r := range b.Stream(context.Background(), jobs) {
		got[r.Job.Tag] = r
	}
	if len(got) != len(jobs) {
		t.Fatalf("stream delivered %d outcomes, want %d", len(got), len(jobs))
	}
	var pe *sim.PanicError
	if !errors.As(got["boom"].Err, &pe) {
		t.Errorf("panicking job: err = %v, want *sim.PanicError", got["boom"].Err)
	}
	for _, tag := range []string{"ok-1", "ok-2"} {
		r := got[tag]
		if r.Err != nil || r.Result == nil || r.Result.Partial {
			t.Errorf("%s: err=%v result=%v — a neighbour's panic must not fail this job", tag, r.Err, r.Result)
		}
	}
}
