package sim_test

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"civect/sim"
)

// cancelObserver cancels a context once enough instructions have
// committed, giving the cancellation tests a deterministic mid-run
// trigger (wall-clock timers would race the simulation's speed).
type cancelObserver struct {
	cancel context.CancelFunc
	after  uint64
}

func (o *cancelObserver) OnCommitBatch(cycle uint64, committed, reused int) {}
func (o *cancelObserver) OnCycleJump(from, to uint64)                       {}
func (o *cancelObserver) OnProgress(cycle, committed uint64) {
	if committed >= o.after {
		o.cancel()
	}
}

// goroutines samples the goroutine count with a little settling time,
// for leak checks.
func goroutines() int {
	for i := 0; i < 10; i++ {
		runtime.Gosched()
	}
	return runtime.NumGoroutine()
}

// TestCancelMidRun cancels sessions mid-flight on a branchy base-tier
// workload and the stall-dense mcf.big under all three engines: the
// partial Result must be well-formed, and nothing may leak.
func TestCancelMidRun(t *testing.T) {
	cases := []struct {
		bench    string
		cancelAt uint64
	}{
		{"gcc", 5_000},
		{"mcf.big", 5_000},
	}
	before := goroutines()
	for _, tc := range cases {
		for _, engine := range sim.Engines() {
			t.Run(tc.bench+"/"+engine.String(), func(t *testing.T) {
				w := mustLoad(t, tc.bench)
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				obs := &cancelObserver{cancel: cancel, after: tc.cancelAt}
				s, err := sim.New(w,
					sim.WithMode(sim.CI),
					sim.WithEngine(engine),
					sim.WithInstrBudget(50_000_000),
					sim.WithObserver(obs, 1_000),
				)
				if err != nil {
					t.Fatal(err)
				}
				res, err := s.Run(ctx)
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("Run returned %v, want context.Canceled", err)
				}
				if res == nil {
					t.Fatal("cancelled Run must still return the partial result")
				}
				if !res.Partial {
					t.Error("cancelled result not marked partial")
				}
				st := res.Stats
				if st.Committed < tc.cancelAt || st.Committed >= 50_000_000 {
					t.Errorf("partial run committed %d, want >= %d and far below the budget", st.Committed, tc.cancelAt)
				}
				if st.Cycles == 0 || st.IPC() <= 0 {
					t.Errorf("partial stats not well-formed: cycles=%d IPC=%v", st.Cycles, st.IPC())
				}
				if st.Committed > st.Fetched {
					t.Errorf("partial stats inconsistent: committed %d > fetched %d", st.Committed, st.Fetched)
				}
				// The cancelled session is sealed.
				if _, err := s.Step(1); !errors.Is(err, sim.ErrSessionEnded) {
					t.Errorf("Step after cancellation: err = %v, want ErrSessionEnded", err)
				}
			})
		}
	}
	if after := goroutines(); after > before+2 {
		t.Errorf("goroutines leaked across cancelled runs: %d -> %d", before, after)
	}
}

// TestDeadlineSealsSession: a session whose context deadline expired —
// without anyone calling cancel — returns a partial result, and
// resuming it via Step is rejected with a clear error.
func TestDeadlineSealsSession(t *testing.T) {
	w := mustLoad(t, "mcf.big")
	s, err := sim.New(w, sim.WithMode(sim.CI), sim.WithInstrBudget(50_000_000))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	res, err := s.Run(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run returned %v, want context.DeadlineExceeded", err)
	}
	if res == nil || !res.Partial {
		t.Fatal("deadline-cut run must return a partial result")
	}
	_, err = s.Step(10)
	if !errors.Is(err, sim.ErrSessionEnded) {
		t.Fatalf("Step after deadline: err = %v, want ErrSessionEnded", err)
	}
	if !strings.Contains(err.Error(), "session has ended") {
		t.Errorf("rejection message %q does not explain the seal", err)
	}
	// The underlying cause stays visible for debugging.
	if !strings.Contains(err.Error(), "deadline") {
		t.Errorf("rejection message %q does not name the deadline", err)
	}
}

// TestBatchStreamCancellation: cancelling a streaming batch cuts
// running jobs short (partial results with the context error) and
// fails jobs still queued, and the stream still terminates cleanly.
func TestBatchStreamCancellation(t *testing.T) {
	before := goroutines()
	b := sim.NewBatch(2)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	var jobs []sim.Job
	for _, name := range []string{"gcc", "gzip", "eon", "vpr", "twolf", "mcf"} {
		jobs = append(jobs, sim.Job{
			Workload: name,
			Options:  []sim.Option{sim.WithMode(sim.CI), sim.WithInstrBudget(500_000_000)},
		})
	}
	done := 0
	for r := range b.Stream(ctx, jobs) {
		done++
		if r.Err == nil {
			t.Errorf("%s: expected a cancellation error on an effectively unbounded run", r.Job.Workload)
			continue
		}
		if r.Result != nil && !r.Result.Partial {
			t.Errorf("%s: cut-short result not marked partial", r.Job.Workload)
		}
	}
	if done != len(jobs) {
		t.Errorf("stream delivered %d outcomes, want %d", done, len(jobs))
	}
	deadline := time.Now().Add(2 * time.Second)
	for goroutines() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := goroutines(); after > before+2 {
		t.Errorf("goroutines leaked after cancelled stream: %d -> %d", before, after)
	}
}
