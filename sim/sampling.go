package sim

import (
	"context"
	"fmt"
	"time"

	"civect/internal/sample"
)

// SamplingConfig tunes sampled simulation (WithSampling): the
// SimPoint-style pipeline that profiles the workload functionally,
// clusters its intervals by basic-block signature, simulates one
// representative per cluster in detail, and stitches the measurements
// into whole-run estimates with confidence intervals. Zero fields take
// the defaults documented per field.
type SamplingConfig struct {
	// IntervalLen is the profiling interval length in dynamic
	// instructions (default 10000).
	IntervalLen uint64
	// Clusters bounds the number of representative intervals simulated
	// in detail (default 8; the plan may use fewer).
	Clusters int
	// Warmup is the detailed warmup in instructions run before each
	// measured interval, on top of the functional warming of branch
	// predictor, cache and stride state (default 3000).
	Warmup uint64
}

// withDefaults resolves zero fields to the documented defaults.
func (sc SamplingConfig) withDefaults() SamplingConfig {
	if sc.IntervalLen == 0 {
		sc.IntervalLen = 10_000
	}
	if sc.Clusters == 0 {
		sc.Clusters = 8
	}
	if sc.Warmup == 0 {
		sc.Warmup = 3_000
	}
	return sc
}

// WithSampling switches the session to sampled simulation: Run executes
// the sampling pipeline instead of a full detailed run and attaches the
// stitched estimates as Result.Sampled. The committed-instruction
// budget (WithInstrBudget) bounds the profiled stream (0 profiles to
// the program's halt — the intended use for the .ultra tier). Sampled
// sessions cannot be stepped, traced or observed, and cannot write
// checkpoints.
func WithSampling(sc SamplingConfig) Option {
	return func(s *settings) {
		if sc.Clusters < 0 {
			if s.err == nil {
				s.err = fmt.Errorf("sim: invalid sampling config %+v", sc)
			}
			return
		}
		c := sc.withDefaults()
		s.sampling = &c
	}
}

// SampledStat is one stitched whole-run metric estimate. Mean is the
// cluster-weighted estimate; CI95 is the 95% confidence half-width,
// quantifying the phase diversity the sampling plan collapsed (the
// simulator itself is deterministic, so there is no measurement noise).
type SampledStat struct {
	Name string  `json:"name"`
	Mean float64 `json:"mean"`
	CI95 float64 `json:"ci95"`
}

// SampledRun is the sampled-simulation extension of a Result: the
// stitched whole-run estimates and the cost accounting of the
// sampling bargain.
type SampledRun struct {
	// IntervalLen, Clusters and Warmup echo the resolved configuration;
	// Clusters is the cluster count the plan actually used.
	IntervalLen uint64 `json:"interval_len"`
	Clusters    int    `json:"clusters"`
	Warmup      uint64 `json:"warmup"`
	// TotalInstr is the profiled stream's dynamic length — what the
	// estimates extrapolate to. DetailedInstr counts instructions
	// simulated in detail (warmup + measurement): the cost side.
	TotalInstr    uint64 `json:"total_instr"`
	DetailedInstr uint64 `json:"detailed_instr"`
	// NumSamples is the number of representative intervals measured.
	NumSamples int `json:"num_samples"`
	// Stats holds the stitched estimates (ipc, cpi, reuse_frac,
	// bp_mpki, l1d_mpki, l2_mpki).
	Stats []SampledStat `json:"stats"`
	// EstCycles extrapolates the full run's cycle count; EstCyclesCI is
	// its 95% half-width.
	EstCycles   float64 `json:"est_cycles"`
	EstCyclesCI float64 `json:"est_cycles_ci"`
}

// Estimate returns the named stitched estimate ("ipc", "reuse_frac",
// ...) or ok=false if the metric is unknown.
func (r *SampledRun) Estimate(name string) (mean, ci95 float64, ok bool) {
	for _, st := range r.Stats {
		if st.Name == name {
			return st.Mean, st.CI95, true
		}
	}
	return 0, 0, false
}

// runSampled executes the sampling pipeline for Run.
func (s *Session) runSampled(ctx context.Context) (*Result, error) {
	sc := *s.sampling
	t0 := time.Now()
	seal := func(err error) error {
		s.wall += time.Since(t0)
		s.sealed = fmt.Errorf("%w: %v", ErrSessionEnded, err)
		return err
	}
	prof, err := sample.Collect(s.w.prog, s.w.newMem(), sample.Config{
		IntervalLen: sc.IntervalLen,
		MaxInstr:    s.cfg.MaxInstr,
	})
	if err != nil {
		return nil, seal(err)
	}
	plan := prof.BuildPlan(sc.Clusters)
	est, err := sample.Run(ctx, plan, s.w.prog, s.w.newMem(), s.cfg, sc.Warmup)
	if err != nil {
		return nil, seal(err)
	}
	s.wall += time.Since(t0)
	s.finished = true
	s.sealed = fmt.Errorf("%w: run complete", ErrSessionEnded)

	sr := &SampledRun{
		IntervalLen:   plan.IntervalLen,
		Clusters:      plan.K,
		Warmup:        sc.Warmup,
		TotalInstr:    est.TotalInstr,
		DetailedInstr: est.DetailedInstr,
		NumSamples:    len(est.Samples),
		EstCycles:     est.EstCycles,
		EstCyclesCI:   est.EstCyclesCI,
	}
	for _, st := range est.Stats {
		sr.Stats = append(sr.Stats, SampledStat{Name: st.Name, Mean: st.Mean, CI95: st.CI95})
	}
	res := s.makeResult(&Stats{}, false)
	res.Instr = est.TotalInstr
	ipc, _ := est.IPC()
	res.IPC = ipc
	if reuse, _, ok := sr.Estimate("reuse_frac"); ok {
		res.ReuseFraction = reuse
	}
	if ns := s.wall.Nanoseconds(); ns > 0 {
		// Throughput counts the instructions actually simulated in
		// detail, not the extrapolated stream.
		res.SimInstrsPerSec = float64(est.DetailedInstr) / (float64(ns) * 1e-9)
	}
	res.Sampled = sr
	return res, nil
}
