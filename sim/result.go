package sim

import (
	"time"

	"civect/internal/benchfmt"
)

// Result is the outcome of one simulation session. It embeds the
// versioned benchfmt row — the same schema cibench writes to
// BENCH_core.json and cigate gates on — so every tool in the stack
// emits one JSON format, and adds the full statistics block.
type Result struct {
	// Result is the embedded benchfmt row: mode, workload, committed
	// instructions, wall time, throughput and the deterministic
	// headline stats (IPC, reuse fraction). BytesPerOp/AllocsPerOp are
	// zero here; only benchmark harnesses that measure allocation
	// (cibench) fill them.
	benchfmt.Result
	// Schema versions this JSON layout (BenchSchemaVersion).
	Schema int `json:"schema"`
	// Partial marks a run cut short — by context cancellation or an
	// expired deadline — before its budget or halt; the statistics are
	// a well-formed prefix of the full run's.
	Partial bool `json:"partial,omitempty"`
	// Stats is the full simulated-statistics block.
	Stats Stats `json:"stats"`
	// Sampled carries the stitched estimates of a sampled run
	// (WithSampling); nil for detailed runs. When set, Stats is zero —
	// a sampled run has no single detailed statistics block — and the
	// embedded row's IPC/ReuseFraction are the stitched means.
	Sampled *SampledRun `json:"sampled,omitempty"`
}

// makeResult renders a stats snapshot as a Result using the wall time
// accumulated so far.
func (s *Session) makeResult(stats *Stats, partial bool) *Result {
	return newResult(s.w, s.cfg, stats, partial, s.wall)
}

// newResult renders a stats snapshot as a Result; Session runs and Set
// sweeps share it, so every simulation in the stack reports one
// format.
func newResult(w *Workload, cfg Config, stats *Stats, partial bool, wall time.Duration) *Result {
	ns := wall.Nanoseconds()
	r := &Result{
		Result: benchfmt.Result{
			Mode:          cfg.Mode.String(),
			Bench:         w.Name(),
			Instr:         stats.Committed,
			NsPerOp:       ns,
			IPC:           stats.IPC(),
			ReuseFraction: stats.ReuseFraction(),
		},
		Schema:  BenchSchemaVersion,
		Partial: partial,
		Stats:   *stats,
	}
	if ns > 0 {
		r.SimInstrsPerSec = float64(stats.Committed) / (float64(ns) * 1e-9)
	}
	return r
}
