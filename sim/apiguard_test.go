package sim_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// allowedInternal lists the internal packages each command or example
// may still import. The simulation façade rule: nothing below the CLI
// layer constructs simulations outside civect/sim, so internal/core
// and internal/workload never appear here; the two exceptions speak to
// the experiment/sweep subsystem (tables, shard files), which itself
// runs its simulations through sim.
var allowedInternal = map[string][]string{
	"cmd/ciexp":   {"civect/internal/harness", "civect/internal/sweep"},
	"cmd/cimerge": {"civect/internal/sweep"},
}

// TestCommandsAndExamplesUseFacade walks every non-test file under
// cmd/ and examples/ and fails on any civect/internal import outside
// the explicit allowlist — the enforcement half of the "one supported
// API" contract.
func TestCommandsAndExamplesUseFacade(t *testing.T) {
	const root = ".."
	for _, dir := range []string{"cmd", "examples"} {
		entries, err := os.ReadDir(filepath.Join(root, dir))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if !e.IsDir() {
				continue
			}
			rel := dir + "/" + e.Name()
			srcs, err := filepath.Glob(filepath.Join(root, rel, "*.go"))
			if err != nil {
				t.Fatal(err)
			}
			for _, src := range srcs {
				if strings.HasSuffix(src, "_test.go") {
					continue
				}
				fset := token.NewFileSet()
				f, err := parser.ParseFile(fset, src, nil, parser.ImportsOnly)
				if err != nil {
					t.Fatal(err)
				}
				for _, imp := range f.Imports {
					path, err := strconv.Unquote(imp.Path.Value)
					if err != nil {
						t.Fatal(err)
					}
					if !strings.HasPrefix(path, "civect/internal/") {
						continue
					}
					ok := false
					for _, allowed := range allowedInternal[rel] {
						if path == allowed {
							ok = true
							break
						}
					}
					if !ok {
						t.Errorf("%s imports %s; commands and examples must use civect/sim", src, path)
					}
				}
			}
		}
	}
}
