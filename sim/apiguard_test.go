package sim_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"civect/internal/lint/facadeonly"
)

// TestCommandsAndExamplesUseFacade walks every non-test file under
// cmd/ and examples/ and fails on any civect/internal import that the
// facadeonly analyzer would flag — the enforcement half of the "one
// supported API" contract. The rule and its allowlist live in
// internal/lint/facadeonly (the civet analyzer, which also surfaces
// violations in-editor via `go vet -vettool`); this test wraps the
// same Violation predicate so CI enforces it with plain `go test`.
func TestCommandsAndExamplesUseFacade(t *testing.T) {
	const root = ".."
	for _, dir := range []string{"cmd", "examples"} {
		entries, err := os.ReadDir(filepath.Join(root, dir))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if !e.IsDir() {
				continue
			}
			pkgPath := "civect/" + dir + "/" + e.Name()
			if !facadeonly.Guarded(pkgPath) {
				t.Fatalf("%s not covered by facadeonly.GuardedPrefixes", pkgPath)
			}
			srcs, err := filepath.Glob(filepath.Join(root, dir, e.Name(), "*.go"))
			if err != nil {
				t.Fatal(err)
			}
			for _, src := range srcs {
				if strings.HasSuffix(src, "_test.go") {
					continue
				}
				fset := token.NewFileSet()
				f, err := parser.ParseFile(fset, src, nil, parser.ImportsOnly)
				if err != nil {
					t.Fatal(err)
				}
				for _, imp := range f.Imports {
					path, err := strconv.Unquote(imp.Path.Value)
					if err != nil {
						t.Fatal(err)
					}
					if facadeonly.Violation(pkgPath, path) {
						t.Errorf("%s imports %s; commands and examples must use %s",
							src, path, facadeonly.Facade)
					}
				}
			}
		}
	}
}
