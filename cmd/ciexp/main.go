// Command ciexp regenerates the paper's tables and figures over the
// synthetic SpecInt2000 workloads.
//
// Experiments run concurrently (they share one memoized run cache), and
// the -workers flag bounds how many simulations may execute at once
// across all of them.
//
// Usage:
//
//	ciexp -exp fig9                 # one experiment
//	ciexp -exp all -instr 500000    # everything, bigger samples
//	ciexp -exp all -json            # machine-readable tables
//	ciexp -list                     # show available experiments
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"civect/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (cost, fig4, fig5, fig8, fig9, fig10, fig11, fig12, fig13, fig14, regs, stores, ablate) or 'all'")
	instr := flag.Uint64("instr", 200_000, "committed-instruction budget per simulation")
	benches := flag.String("benches", "", "comma-separated benchmark subset (default: all twelve)")
	workers := flag.Int("workers", 0, "maximum simulations in flight across all experiments (default GOMAXPROCS; 1 fully serializes)")
	jsonOut := flag.Bool("json", false, "emit the tables as JSON instead of aligned text")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	opt := harness.Options{MaxInstr: *instr, Workers: *workers}
	if *benches != "" {
		opt.Benches = strings.Split(*benches, ",")
	}
	h := harness.New(opt)

	exps := harness.Experiments()
	if *exp != "all" {
		e, ok := harness.ExperimentByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "ciexp: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		exps = []harness.Experiment{e}
	}

	tables, err := harness.RunExperiments(h, exps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ciexp: %v\n", err)
		os.Exit(1)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tables); err != nil {
			fmt.Fprintf(os.Stderr, "ciexp: %v\n", err)
			os.Exit(1)
		}
		return
	}
	for _, t := range tables {
		fmt.Println(t)
	}
}
