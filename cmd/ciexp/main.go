// Command ciexp regenerates the paper's tables and figures over the
// synthetic SpecInt2000 workloads.
//
// Usage:
//
//	ciexp -exp fig9                 # one experiment
//	ciexp -exp all -instr 500000    # everything, bigger samples
//	ciexp -list                     # show available experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"civect/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (cost, fig4, fig5, fig8, fig9, fig10, fig11, fig12, fig13, fig14, regs, stores, ablate) or 'all'")
	instr := flag.Uint64("instr", 200_000, "committed-instruction budget per simulation")
	benches := flag.String("benches", "", "comma-separated benchmark subset (default: all twelve)")
	workers := flag.Int("workers", 0, "parallel simulations (default GOMAXPROCS)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	opt := harness.Options{MaxInstr: *instr, Workers: *workers}
	if *benches != "" {
		opt.Benches = strings.Split(*benches, ",")
	}
	h := harness.New(opt)

	run := func(e harness.Experiment) {
		t, err := e.Run(h)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ciexp: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(t)
	}

	if *exp == "all" {
		for _, e := range harness.Experiments() {
			run(e)
		}
		return
	}
	e, ok := harness.ExperimentByID(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "ciexp: unknown experiment %q (try -list)\n", *exp)
		os.Exit(2)
	}
	run(e)
}
