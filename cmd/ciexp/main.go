// Command ciexp regenerates the paper's tables and figures over the
// synthetic SpecInt2000 workloads.
//
// Experiments run concurrently (they share one memoized run cache), and
// the -workers flag bounds how many simulations may execute at once
// across all of them.
//
// With -shard k/n the command runs only the k-th of n deterministic
// partitions of the sweep's simulation cross-product and emits the raw
// per-cell results as JSON; cmd/cimerge joins the shard files back
// into the complete tables, byte-identical to an unsharded run. This
// lets a CI farm (or several machines) split a full-budget sweep.
// Adding -shard-state journals completed cells to a file so a killed
// shard run can be restarted with the same flags and only simulate the
// cells it had not yet finished — the output stays byte-identical.
//
// Usage:
//
//	ciexp -exp fig9                 # one experiment
//	ciexp -exp all -instr 500000    # everything, bigger samples
//	ciexp -exp all -json            # machine-readable tables
//	ciexp -tier big                 # megabyte-scale workload variants
//	ciexp -shard 2/8 -json > s2.json# one shard of the sweep
//	ciexp -list                     # show available experiments
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"civect/internal/harness"
	"civect/internal/sweep"
	"civect/sim"
)

func fail(err error) {
	fmt.Fprintf(os.Stderr, "ciexp: %v\n", err)
	os.Exit(1)
}

func main() {
	exp := flag.String("exp", "all", "experiment id (cost, fig4, fig5, fig8, fig9, fig10, fig11, fig12, fig13, fig14, regs, stores, ablate) or 'all'")
	instr := flag.Uint64("instr", 200_000, "committed-instruction budget per simulation")
	benches := flag.String("benches", "", "comma-separated benchmark subset (default: the selected tier)")
	tier := flag.String("tier", "base", "benchmark tier: base (the twelve ~3k-instr stand-ins), big (their 100k+-instr variants), ultra (their 10M+-dynamic-instr variants), both (base+big), or all")
	workers := flag.Int("workers", 0, "maximum simulations in flight across all experiments (default GOMAXPROCS; 1 fully serializes)")
	batch := flag.Int("batch", 0, "lockstep batch width for sweep prefetch (0 auto, 1 legacy sequential; results are bit-identical at every width)")
	shard := flag.String("shard", "", "run only shard k/n of the sweep and emit per-cell JSON for cimerge")
	shardState := flag.String("shard-state", "", "crash-recovery journal for -shard: completed cells append here and a restarted run skips them (removed on success)")
	jsonOut := flag.Bool("json", false, "emit the tables as JSON instead of aligned text")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	opt := harness.Options{MaxInstr: *instr, Workers: *workers, BatchWidth: *batch}
	switch *tier {
	case "base":
		// The harness default.
	case "big":
		opt.Benches = sim.BigWorkloads()
	case "ultra":
		opt.Benches = sim.UltraWorkloads()
	case "both":
		opt.Benches = append(sim.BaseWorkloads(), sim.BigWorkloads()...)
	case "all":
		opt.Benches = sim.Workloads()
	default:
		fmt.Fprintf(os.Stderr, "ciexp: unknown tier %q (base, big, ultra, both, all)\n", *tier)
		os.Exit(2)
	}
	if *benches != "" {
		opt.Benches = strings.Split(*benches, ",")
	}

	var expIDs []string
	exps := harness.Experiments()
	if *exp != "all" {
		e, ok := harness.ExperimentByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "ciexp: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		exps = []harness.Experiment{e}
		expIDs = []string{e.ID}
	}

	if *shardState != "" && *shard == "" {
		fmt.Fprintln(os.Stderr, "ciexp: -shard-state requires -shard")
		os.Exit(2)
	}
	if *shard != "" {
		sh, err := sweep.ParseShard(*shard)
		if err != nil {
			fail(err)
		}
		var file *sweep.File
		if *shardState != "" {
			file, err = sweep.RunShardJournaled(expIDs, opt, sh, *shardState)
		} else {
			file, err = sweep.RunShard(expIDs, opt, sh)
		}
		if err != nil {
			fail(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(file); err != nil {
			fail(err)
		}
		return
	}

	h := harness.New(opt)
	tables, err := harness.RunExperiments(h, exps)
	if err != nil {
		fail(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tables); err != nil {
			fail(err)
		}
		return
	}
	for _, t := range tables {
		fmt.Println(t)
	}
}
