// Command cickpt drives checkpointed and sampled simulation: the
// SimPoint-style pipeline (docs/SAMPLING.md) that makes
// billion-instruction workloads affordable, and the CIVK checkpoint
// machinery that makes long runs killable and resumable.
//
// Usage:
//
//	cickpt profile -bench gcc.ultra -interval 10000 -k 8
//	cickpt checkpoint -bench gcc -mode ci -at 15000 -o gcc.ckpt
//	cickpt sampled-run -bench gcc.ultra -mode ci -k 8 -warmup 3000
//	cickpt prepare -bench gcc.ultra -mode ci -k 8 -o gcc.sstate
//	cickpt measure -state gcc.sstate
//	cickpt verify gcc.ckpt
//	cickpt verify -bench gcc.big -mode ci -at 40000 -instr 120000
//
// prepare and measure split the sampled run into its amortizable and
// per-run halves: prepare pays the full-stream profiling and warming
// passes once and captures per-sample restart state into a CIVK file;
// measure simulates just the detailed samples from that file,
// bit-identical to what sampled-run would report live, at a small
// fraction of even the sampled run's wall-clock.
//
// verify exits 0 when the check passes, 1 on a mismatch, and 2 on
// usage or I/O errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"

	"civect/internal/sample"
	"civect/internal/workload"
	"civect/sim"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "profile":
		cmdProfile(os.Args[2:])
	case "checkpoint":
		cmdCheckpoint(os.Args[2:])
	case "sampled-run":
		cmdSampledRun(os.Args[2:])
	case "prepare":
		cmdPrepare(os.Args[2:])
	case "measure":
		cmdMeasure(os.Args[2:])
	case "verify":
		cmdVerify(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "cickpt: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  cickpt profile -bench B [-instr N] [-interval I] [-k K] [-json]
  cickpt checkpoint -bench B -at N -o FILE [-mode M] [-engine E]
  cickpt sampled-run -bench B [-mode M] [-instr N] [-interval I] [-k K] [-warmup W] [-json]
  cickpt prepare -bench B -o FILE [-mode M] [-instr N] [-interval I] [-k K] [-warmup W]
  cickpt measure -state FILE [-json]
  cickpt verify FILE
  cickpt verify -bench B -at N [-instr M] [-mode M] [-engine E]
`)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cickpt:", err)
	os.Exit(2)
}

// cmdProfile collects the basic-block-vector profile and prints the
// sampling plan it induces: which intervals a sampled run would
// simulate in detail, and with what weight.
func cmdProfile(args []string) {
	fs := flag.NewFlagSet("cickpt profile", flag.ExitOnError)
	bench := fs.String("bench", "gcc.ultra", "benchmark name (any tier)")
	instr := fs.Uint64("instr", 0, "profiled-stream bound in instructions (0 = run to halt)")
	interval := fs.Uint64("interval", 10_000, "profiling interval length in instructions")
	k := fs.Int("k", 8, "maximum representative intervals")
	jsonOut := fs.Bool("json", false, "emit the plan as JSON")
	fs.Parse(args)
	if fs.NArg() != 0 {
		usage()
		os.Exit(2)
	}

	wl, err := workload.Spec(*bench)
	if err != nil {
		fatal(err)
	}
	prof, err := sample.Collect(wl.Program, wl.NewMem(), sample.Config{IntervalLen: *interval, MaxInstr: *instr})
	if err != nil {
		fatal(err)
	}
	plan := prof.BuildPlan(*k)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(plan); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("%s: %d instructions, %d intervals of %d, %d basic blocks, %d clusters\n",
		*bench, prof.TotalInstr, len(prof.Vectors), prof.IntervalLen, prof.NumBlocks, plan.K)
	fmt.Printf("%10s %12s %12s %8s\n", "interval", "start", "len", "weight")
	for _, s := range plan.Samples {
		fmt.Printf("%10d %12d %12d %8.4f\n", s.Interval, s.Start, s.Len, s.Weight)
	}
}

// stepTo drives a session to the target committed-instruction count
// without sealing it (Step chunks cycles; commit counts trail them).
func stepTo(s *sim.Session, target uint64) error {
	for s.Stats().Committed < target {
		if s.Halted() {
			return fmt.Errorf("program halted at %d committed instructions, before target %d",
				s.Stats().Committed, target)
		}
		if _, err := s.Step(256); err != nil {
			return err
		}
	}
	return nil
}

// cmdCheckpoint runs a detailed simulation to a committed-instruction
// split point and persists the full machine state there.
func cmdCheckpoint(args []string) {
	fs := flag.NewFlagSet("cickpt checkpoint", flag.ExitOnError)
	bench := fs.String("bench", "gcc", "benchmark name (any tier)")
	modeStr := fs.String("mode", "ci", "machine mode: scal, wb, ci, ci-iw, vect")
	engineStr := fs.String("engine", "fast-forward", "simulation engine: fast-forward, event, naive")
	at := fs.Uint64("at", 0, "committed-instruction split point (required, > 0)")
	out := fs.String("o", "", "output checkpoint file (required)")
	fs.Parse(args)
	if *out == "" || *at == 0 || fs.NArg() != 0 {
		usage()
		os.Exit(2)
	}

	s, err := newSession(*bench, *modeStr, *engineStr, 0)
	if err != nil {
		fatal(err)
	}
	if err := stepTo(s, *at); err != nil {
		fatal(err)
	}
	if err := s.Checkpoint(*out); err != nil {
		fatal(err)
	}
	st := s.Stats()
	fmt.Printf("%s: %s/%s checkpointed at cycle %d, %d committed\n",
		*out, *bench, *modeStr, st.Cycles, st.Committed)
}

// cmdSampledRun executes the full sampling pipeline through the façade
// and prints the stitched estimates with their confidence intervals.
func cmdSampledRun(args []string) {
	fs := flag.NewFlagSet("cickpt sampled-run", flag.ExitOnError)
	bench := fs.String("bench", "gcc.ultra", "benchmark name (any tier)")
	modeStr := fs.String("mode", "ci", "machine mode: scal, wb, ci, ci-iw, vect")
	instr := fs.Uint64("instr", 0, "profiled-stream bound in instructions (0 = run to halt)")
	interval := fs.Uint64("interval", 10_000, "profiling interval length in instructions")
	k := fs.Int("k", 8, "maximum representative intervals")
	warmup := fs.Uint64("warmup", 3_000, "detailed warmup instructions per sample")
	jsonOut := fs.Bool("json", false, "emit the Result as JSON")
	fs.Parse(args)
	if fs.NArg() != 0 {
		usage()
		os.Exit(2)
	}

	mode, err := sim.ParseMode(*modeStr)
	if err != nil {
		fatal(err)
	}
	w, err := sim.Load(*bench)
	if err != nil {
		fatal(err)
	}
	s, err := sim.New(w,
		sim.WithMode(mode),
		sim.WithInstrBudget(*instr),
		sim.WithSampling(sim.SamplingConfig{IntervalLen: *interval, Clusters: *k, Warmup: *warmup}))
	if err != nil {
		fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		return
	}
	sr := res.Sampled
	fmt.Printf("%s/%s: %d instructions estimated from %d simulated in detail (%d samples of %d intervals)\n",
		*bench, *modeStr, sr.TotalInstr, sr.DetailedInstr, sr.NumSamples, sr.TotalInstr/sr.IntervalLen)
	fmt.Printf("%12s %14s %12s\n", "metric", "estimate", "ci95")
	for _, st := range sr.Stats {
		fmt.Printf("%12s %14.4f %12.4f\n", st.Name, st.Mean, st.CI95)
	}
	fmt.Printf("%12s %14.0f %12.0f\n", "est_cycles", sr.EstCycles, sr.EstCyclesCI)
}

// cmdPrepare pays the sampled run's one-time cost — the functional
// profiling pass and the warming fast-forward, both linear in the full
// stream — and captures per-sample restart state into a CIVK file a
// later measure run starts from.
func cmdPrepare(args []string) {
	fs := flag.NewFlagSet("cickpt prepare", flag.ExitOnError)
	bench := fs.String("bench", "gcc.ultra", "benchmark name (any tier)")
	modeStr := fs.String("mode", "ci", "machine mode: scal, wb, ci, ci-iw, vect")
	instr := fs.Uint64("instr", 0, "profiled-stream bound in instructions (0 = run to halt)")
	interval := fs.Uint64("interval", 10_000, "profiling interval length in instructions")
	k := fs.Int("k", 8, "maximum representative intervals")
	warmup := fs.Uint64("warmup", 3_000, "detailed warmup instructions per sample")
	out := fs.String("o", "", "output state file (required)")
	fs.Parse(args)
	if *out == "" || fs.NArg() != 0 {
		usage()
		os.Exit(2)
	}

	mode, err := sim.ParseMode(*modeStr)
	if err != nil {
		fatal(err)
	}
	wl, err := workload.Spec(*bench)
	if err != nil {
		fatal(err)
	}
	prof, err := sample.Collect(wl.Program, wl.NewMem(), sample.Config{IntervalLen: *interval, MaxInstr: *instr})
	if err != nil {
		fatal(err)
	}
	plan := prof.BuildPlan(*k)
	data, err := sample.CaptureState(context.Background(), plan, wl.Program, wl.NewMem(), sim.DefaultConfig(mode), *warmup)
	if err != nil {
		fatal(err)
	}
	if err := sample.WriteStateFile(*out, data); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %s/%s: %d samples of %d intervals captured (%d bytes)\n",
		*out, *bench, *modeStr, len(plan.Samples), len(prof.Vectors), len(data))
}

// cmdMeasure runs just the detailed samples from a prepared state file
// and stitches the estimates — bit-identical to what sampled-run would
// report live, without either full-stream pass.
func cmdMeasure(args []string) {
	fs := flag.NewFlagSet("cickpt measure", flag.ExitOnError)
	state := fs.String("state", "", "state file written by cickpt prepare (required)")
	jsonOut := fs.Bool("json", false, "emit the estimate as JSON")
	fs.Parse(args)
	if *state == "" || fs.NArg() != 0 {
		usage()
		os.Exit(2)
	}

	data, err := os.ReadFile(*state)
	if err != nil {
		fatal(err)
	}
	info, err := sample.PeekState(data)
	if err != nil {
		fatal(err)
	}
	// The state file is self-describing: the workload regenerates from
	// the registry by the captured name, and RunFromState re-checks the
	// program hash underneath.
	wl, err := workload.Spec(info.Program)
	if err != nil {
		fatal(err)
	}
	est, err := sample.RunFromState(context.Background(), data, wl.Program, wl.NewMem())
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(est); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("%s/%s: %d instructions estimated from %d simulated in detail (%d samples)\n",
		info.Program, info.Config.Mode, est.TotalInstr, est.DetailedInstr, len(est.Samples))
	fmt.Printf("%12s %14s %12s\n", "metric", "estimate", "ci95")
	for _, st := range est.Stats {
		fmt.Printf("%12s %14.4f %12.4f\n", st.Name, st.Mean, st.CI95)
	}
	fmt.Printf("%12s %14.0f %12.0f\n", "est_cycles", est.EstCycles, est.EstCyclesCI)
}

// cmdVerify has two forms. With a file argument it checks the
// checkpoint restores cleanly and reports what it holds. With -bench
// and -at it runs the restore-bit-identity differential: a full
// detailed run against a run that checkpoints at the split point,
// resumes from disk, and continues — the two must agree bit for bit.
func cmdVerify(args []string) {
	fs := flag.NewFlagSet("cickpt verify", flag.ExitOnError)
	bench := fs.String("bench", "", "differential form: benchmark name")
	modeStr := fs.String("mode", "ci", "machine mode: scal, wb, ci, ci-iw, vect")
	engineStr := fs.String("engine", "fast-forward", "simulation engine: fast-forward, event, naive")
	at := fs.Uint64("at", 0, "differential form: committed-instruction split point")
	instr := fs.Uint64("instr", 0, "differential form: committed-instruction budget (0 = run to halt)")
	fs.Parse(args)

	if *bench == "" {
		if fs.NArg() != 1 {
			usage()
			os.Exit(2)
		}
		verifyFile(fs.Arg(0))
		return
	}
	if *at == 0 || fs.NArg() != 0 {
		usage()
		os.Exit(2)
	}
	verifyDifferential(*bench, *modeStr, *engineStr, *at, *instr)
}

func verifyFile(path string) {
	// Both CIVK payload kinds verify here: a sample-state file decodes
	// through PeekState, a full-machine checkpoint through sim.Resume.
	if data, err := os.ReadFile(path); err == nil {
		if info, err := sample.PeekState(data); err == nil {
			fmt.Printf("%s: ok: sample state: %s/%s, %d samples over %d instructions\n",
				path, info.Program, info.Config.Mode, len(info.Plan.Samples), info.Plan.TotalInstr)
			return
		}
	}
	s, err := sim.Resume(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cickpt: %s: %v\n", path, err)
		os.Exit(1)
	}
	st := s.Stats()
	fmt.Printf("%s: ok: %s/%s at cycle %d, %d committed\n",
		path, s.Workload().Name(), s.Config().Mode, st.Cycles, st.Committed)
}

func verifyDifferential(bench, modeStr, engineStr string, at, instr uint64) {
	full, err := newSession(bench, modeStr, engineStr, instr)
	if err != nil {
		fatal(err)
	}
	want, err := full.Run(context.Background())
	if err != nil {
		fatal(err)
	}

	dir, err := os.MkdirTemp("", "cickpt-verify-")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "split.ckpt")

	half, err := newSession(bench, modeStr, engineStr, instr)
	if err != nil {
		fatal(err)
	}
	if err := stepTo(half, at); err != nil {
		fatal(err)
	}
	if err := half.Checkpoint(path); err != nil {
		fatal(err)
	}
	resumed, err := sim.Resume(path)
	if err != nil {
		fatal(err)
	}
	got, err := resumed.Run(context.Background())
	if err != nil {
		fatal(err)
	}

	if !reflect.DeepEqual(got.Stats, want.Stats) || resumed.ARF() != full.ARF() {
		fmt.Fprintf(os.Stderr, "cickpt: DIVERGED: %s/%s split at %d: resumed run differs from uninterrupted run\n",
			bench, modeStr, at)
		fmt.Fprintf(os.Stderr, "  full:    %d cycles, %d committed, IPC %.6f\n",
			want.Stats.Cycles, want.Stats.Committed, want.Stats.IPC())
		fmt.Fprintf(os.Stderr, "  resumed: %d cycles, %d committed, IPC %.6f\n",
			got.Stats.Cycles, got.Stats.Committed, got.Stats.IPC())
		os.Exit(1)
	}
	fmt.Printf("%s/%s/%s: ok: split at %d, both runs end at cycle %d with %d committed, bit-identical\n",
		bench, modeStr, engineStr, at, want.Stats.Cycles, want.Stats.Committed)
}

// newSession builds a detailed session over a registry workload.
func newSession(bench, modeStr, engineStr string, instr uint64) (*sim.Session, error) {
	mode, err := sim.ParseMode(modeStr)
	if err != nil {
		return nil, err
	}
	engine, err := sim.ParseEngine(engineStr)
	if err != nil {
		return nil, err
	}
	w, err := sim.Load(bench)
	if err != nil {
		return nil, err
	}
	return sim.New(w, sim.WithMode(mode), sim.WithEngine(engine), sim.WithInstrBudget(instr))
}
