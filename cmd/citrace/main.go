// Command citrace records, inspects and compares deterministic
// cycle-trace journals (the binary format of docs/TRACE_FORMAT.md).
// Its purpose is divergence hunting: record a known-good journal and a
// suspect one, then let diff localize the exact first cycle — and
// first event within it — where the two runs part ways. The worked
// example in docs/DEBUGGING.md hunts a real historical engine bug
// with it.
//
// Usage:
//
//	citrace record -bench vpr -mode ci -instr 15000 -o good.civt
//	citrace record -bench vpr -mode ci -instr 15000 -alias-bug -o bad.civt
//	citrace dump -from 360 -to 380 good.civt
//	citrace diff good.civt bad.civt
//
// diff exits 0 when the journals describe identical event streams, 1
// on divergence, and 2 on usage or I/O errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"civect/internal/trace"
	"civect/sim"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "record":
		cmdRecord(os.Args[2:])
	case "dump":
		cmdDump(os.Args[2:])
	case "diff":
		cmdDiff(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "citrace: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  citrace record -o FILE [-bench B] [-mode M] [-engine E] [-instr N] [-level L] [-window F:L] [-alias-bug]
  citrace dump [-from N] [-to N] FILE
  citrace diff [-engine-events] FILE_A FILE_B
`)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "citrace:", err)
	os.Exit(2)
}

func cmdRecord(args []string) {
	fs := flag.NewFlagSet("citrace record", flag.ExitOnError)
	bench := fs.String("bench", "gcc", "benchmark name (either tier)")
	modeStr := fs.String("mode", "ci", "machine mode: scal, wb, ci, ci-iw, vect")
	engineStr := fs.String("engine", "fast-forward", "simulation engine: fast-forward, event, naive")
	instr := fs.Uint64("instr", 15_000, "committed-instruction budget (0 = run to halt)")
	levelStr := fs.String("level", "pipeline", "journal level: commits, pipeline, full")
	window := fs.String("window", "", "only record cycles F:L (L empty = open-ended)")
	aliasBug := fs.Bool("alias-bug", false,
		"re-introduce the PR 1 SRSMT worklist aliasing bug (divergence demo; see docs/DEBUGGING.md)")
	out := fs.String("o", "", "output journal file (required)")
	fs.Parse(args)
	if *out == "" || fs.NArg() != 0 {
		usage()
		os.Exit(2)
	}

	mode, err := sim.ParseMode(*modeStr)
	if err != nil {
		fatal(err)
	}
	engine, err := sim.ParseEngine(*engineStr)
	if err != nil {
		fatal(err)
	}
	level, err := sim.ParseTraceLevel(*levelStr)
	if err != nil {
		fatal(err)
	}
	w, err := sim.Load(*bench)
	if err != nil {
		fatal(err)
	}

	// The journal is published atomically: it is recorded into a temp
	// file and renamed onto -o only after the run completed and the
	// trailer sealed, so an interrupted or failed record never leaves a
	// truncated file where a valid artifact is expected.
	f, err := trace.NewAtomicFile(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Abort() // no-op once committed
	opts := []sim.Option{
		sim.WithMode(mode),
		sim.WithEngine(engine),
		sim.WithInstrBudget(*instr),
		sim.WithTrace(f),
		sim.WithTraceLevel(level),
	}
	if *window != "" {
		first, last, err := parseWindow(*window)
		if err != nil {
			fatal(err)
		}
		opts = append(opts, sim.WithTraceWindow(first, last))
	}
	if *aliasBug {
		opts = append(opts, sim.WithConfigPatch(func(c *sim.Config) {
			c.EmulateAliasedWorklist = true
		}))
	}
	s, err := sim.New(w, opts...)
	if err != nil {
		fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		fatal(err)
	}
	if err := f.Commit(); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %s/%s level=%s: %d cycles, %d committed\n",
		*out, *bench, mode, level, res.Stats.Cycles, res.Stats.Committed)
}

// parseWindow parses "F:L" ("F:" leaves the window open-ended).
func parseWindow(s string) (first, last uint64, err error) {
	var f, l uint64
	if n, _ := fmt.Sscanf(s, "%d:%d", &f, &l); n == 2 {
		return f, l, nil
	}
	if n, _ := fmt.Sscanf(s+"\n", "%d:\n", &f); n == 1 {
		return f, 0, nil
	}
	return 0, 0, fmt.Errorf("invalid -window %q (want FIRST:LAST or FIRST:)", s)
}

func cmdDump(args []string) {
	fs := flag.NewFlagSet("citrace dump", flag.ExitOnError)
	from := fs.Uint64("from", 0, "first cycle to print")
	to := fs.Uint64("to", 0, "last cycle to print (0 = unbounded)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		fatal(err)
	}
	if err := trace.Dump(os.Stdout, r, *from, *to); err != nil {
		fatal(err)
	}
}

func cmdDiff(args []string) {
	fs := flag.NewFlagSet("citrace diff", flag.ExitOnError)
	engineEvents := fs.Bool("engine-events", false,
		"also compare engine-specific events (fast-forward jumps; full-level journals)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
		os.Exit(2)
	}
	open := func(path string) *trace.Reader {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		r, err := trace.NewReader(f)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		return r
	}
	ra, rb := open(fs.Arg(0)), open(fs.Arg(1))
	res, err := trace.Diff(ra, rb, trace.DiffOptions{EngineEvents: *engineEvents})
	if err != nil {
		fatal(err)
	}
	if res.Identical() {
		fmt.Printf("identical: %d event-bearing cycles, %d events\n", res.Cycles, res.EventsA)
		return
	}
	d := res.Divergence
	fmt.Printf("DIVERGED at cycle %d (after %d identical event-bearing cycles)\n", d.Cycle, res.Cycles)
	fmt.Printf("  %s\n", d.Reason)
	printSide := func(name, path string, evs []trace.Event) {
		if evs == nil {
			fmt.Printf("  %s (%s): no events this cycle\n", name, path)
			return
		}
		fmt.Printf("  %s (%s):\n", name, path)
		for i, e := range evs {
			marker := "  "
			if i == d.Index {
				marker = "->"
			}
			fmt.Printf("   %s %s\n", marker, e)
		}
	}
	printSide("A", fs.Arg(0), d.A)
	printSide("B", fs.Arg(1), d.B)
	os.Exit(1)
}
