// Civet is the repo's static-analysis gate: a go/analysis vettool
// composing the custom civet analyzers that mechanically enforce the
// simulator's determinism, zero-allocation and façade invariants
// (internal/lint/...). Every analyzer is grounded in a bug class this
// repo has actually shipped and later fixed.
//
// Build and run it through go vet, which drives the unitchecker
// protocol (package loading, export data, per-package invocation):
//
//	go build -o /tmp/civet ./cmd/civet
//	go vet -vettool=/tmp/civet ./...
//
// or, via the go.mod tool directive:
//
//	go vet -vettool=$(go tool -n civet) ./...
//
// Diagnostics are suppressed per-line with
// `//civet:allow <analyzer> <reason>`; the reason is mandatory and
// checked. See internal/lint/directive for the directive grammar and
// the README's "Static analysis" section for what each analyzer
// enforces.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"civect/internal/lint/directive"
	"civect/internal/lint/facadeonly"
	"civect/internal/lint/hotalloc"
	"civect/internal/lint/mapdet"
	"civect/internal/lint/nodeterm"
)

func main() {
	unitchecker.Main(
		directive.Analyzer,
		facadeonly.Analyzer,
		hotalloc.Analyzer,
		mapdet.Analyzer,
		nodeterm.Analyzer,
	)
}
