// Command cigate compares a fresh cibench run against the committed
// performance baseline and exits nonzero on regression, turning
// BENCH_core.json from a passive record into a CI gate.
//
// Throughput (sim-instrs/s) may regress by at most -tol (a fraction;
// the default 0.10 allows 10% for like-for-like local comparisons,
// tight enough to catch a scheduler regression while absorbing
// warm-machine variance. CI passes a larger value because shared
// runners are slower and noisier than the machine that recorded the
// baseline).
// IPC and reuse fraction must match the baseline exactly: the
// simulator is deterministic, so any drift there is a semantic change
// that belongs in a reviewed baseline update.
//
// Usage:
//
//	cibench -o fresh.json && cigate fresh.json
//	cigate -baseline BENCH_core.json -tol 0.5 fresh.json
package main

import (
	"flag"
	"fmt"
	"os"

	"civect/sim"
)

func main() {
	baselinePath := flag.String("baseline", "BENCH_core.json", "committed baseline to gate against")
	tol := flag.Float64("tol", 0.10, "allowed fractional throughput slowdown (0.10 = 10%)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cigate [-baseline BENCH_core.json] [-tol 0.15] fresh.json")
		os.Exit(2)
	}
	if *tol < 0 || *tol >= 1 {
		fmt.Fprintln(os.Stderr, "cigate: -tol must be in [0, 1)")
		os.Exit(2)
	}
	baseline, err := sim.LoadBenchResults(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cigate: %v\n", err)
		os.Exit(2)
	}
	fresh, err := sim.LoadBenchResults(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "cigate: %v\n", err)
		os.Exit(2)
	}

	problems := sim.GateBench(baseline, fresh, *tol)
	if len(problems) == 0 {
		fmt.Printf("cigate: %d cells within tolerance (throughput -%.0f%%, stats exact)\n",
			len(baseline), 100**tol)
		return
	}
	for _, p := range problems {
		fmt.Fprintf(os.Stderr, "cigate: REGRESSION: %s\n", p)
	}
	fmt.Fprintf(os.Stderr, "cigate: %d problem(s) against %s\n", len(problems), *baselinePath)
	os.Exit(1)
}
