// Command cibench measures simulator throughput per machine mode and
// writes a machine-readable baseline (BENCH_core.json by default), so
// the performance trajectory of the hot path is tracked in-repo from
// one change to the next.
//
// Usage:
//
//	cibench                       # write BENCH_core.json
//	cibench -o - -instr 100000    # print to stdout, bigger runs
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"civect/internal/core"
	"civect/internal/workload"
)

// Result is one mode's measurement: simulator speed and allocation
// behaviour for a fresh simulation of Instr committed instructions.
type Result struct {
	Mode            string  `json:"mode"`
	Bench           string  `json:"bench"`
	Instr           uint64  `json:"sim_instrs_per_run"`
	NsPerOp         int64   `json:"ns_per_op"`
	SimInstrsPerSec float64 `json:"sim_instrs_per_sec"`
	BytesPerOp      int64   `json:"bytes_per_op"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	IPC             float64 `json:"ipc"`
	ReuseFraction   float64 `json:"reuse_fraction"`
}

func measure(mode core.Mode, bench string, instr uint64) (Result, error) {
	wl, err := workload.Spec(bench)
	if err != nil {
		return Result{}, err
	}
	var st *core.Stats
	var runErr error
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg := core.DefaultConfig(mode)
			cfg.MaxInstr = instr
			p, err := core.New(cfg, wl.Program, wl.NewMem())
			if err != nil {
				runErr = err
				return
			}
			if st, err = p.Run(); err != nil {
				runErr = err
				return
			}
		}
	})
	if runErr != nil {
		return Result{}, fmt.Errorf("%s/%v: %w", bench, mode, runErr)
	}
	ns := br.NsPerOp()
	return Result{
		Mode:            mode.String(),
		Bench:           bench,
		Instr:           instr,
		NsPerOp:         ns,
		SimInstrsPerSec: float64(st.Committed) / (float64(ns) * 1e-9),
		BytesPerOp:      br.AllocedBytesPerOp(),
		AllocsPerOp:     br.AllocsPerOp(),
		IPC:             st.IPC(),
		ReuseFraction:   st.ReuseFraction(),
	}, nil
}

func main() {
	out := flag.String("o", "BENCH_core.json", "output path ('-' for stdout)")
	bench := flag.String("bench", "gcc", "benchmark workload to simulate")
	instr := flag.Uint64("instr", 30_000, "committed-instruction budget per simulation")
	flag.Parse()

	modes := []core.Mode{core.ModeScalar, core.ModeWideBus, core.ModeCI, core.ModeCIIW, core.ModeVect}
	results := make([]Result, 0, len(modes))
	for _, m := range modes {
		r, err := measure(m, *bench, *instr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cibench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "cibench: %-6s %8.0f sim-instrs/s  %7d B/op  %5d allocs/op\n",
			r.Mode, r.SimInstrsPerSec, r.BytesPerOp, r.AllocsPerOp)
		results = append(results, r)
	}

	blob, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "cibench: %v\n", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if *out == "-" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "cibench: %v\n", err)
		os.Exit(1)
	}
}
