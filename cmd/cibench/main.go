// Command cibench measures simulator throughput per machine mode and
// benchmark tier and writes a machine-readable baseline
// (BENCH_core.json by default), so the performance trajectory of the
// hot path is tracked in-repo from one change to the next. cmd/cigate
// compares a fresh run against the committed baseline in CI.
//
// Usage:
//
//	cibench                          # write BENCH_core.json (gcc + gcc.big)
//	cibench -o - -instr 100000       # print to stdout, bigger runs
//	cibench -bench gcc.big -o big.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"

	"civect/internal/benchfmt"
	"civect/internal/core"
	"civect/internal/workload"
)

func measure(mode core.Mode, bench string, instr uint64) (benchfmt.Result, error) {
	wl, err := workload.Spec(bench)
	if err != nil {
		return benchfmt.Result{}, err
	}
	var st *core.Stats
	var runErr error
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg := core.DefaultConfig(mode)
			cfg.MaxInstr = instr
			p, err := core.New(cfg, wl.Program, wl.NewMem())
			if err != nil {
				runErr = err
				return
			}
			if st, err = p.Run(); err != nil {
				runErr = err
				return
			}
		}
	})
	if runErr != nil {
		return benchfmt.Result{}, fmt.Errorf("%s/%v: %w", bench, mode, runErr)
	}
	ns := br.NsPerOp()
	return benchfmt.Result{
		Mode:            mode.String(),
		Bench:           bench,
		Instr:           instr,
		NsPerOp:         ns,
		SimInstrsPerSec: float64(st.Committed) / (float64(ns) * 1e-9),
		BytesPerOp:      br.AllocedBytesPerOp(),
		AllocsPerOp:     br.AllocsPerOp(),
		IPC:             st.IPC(),
		ReuseFraction:   st.ReuseFraction(),
	}, nil
}

func main() {
	out := flag.String("o", "BENCH_core.json", "output path ('-' for stdout)")
	bench := flag.String("bench", "gcc,gcc.big", "comma-separated benchmark workloads (both tiers allowed)")
	instr := flag.Uint64("instr", 30_000, "committed-instruction budget per simulation")
	flag.Parse()

	modes := []core.Mode{core.ModeScalar, core.ModeWideBus, core.ModeCI, core.ModeCIIW, core.ModeVect}
	var results []benchfmt.Result
	for _, b := range strings.Split(*bench, ",") {
		for _, m := range modes {
			r, err := measure(m, b, *instr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cibench: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "cibench: %-12s %-6s %8.0f sim-instrs/s  %8d B/op  %5d allocs/op\n",
				r.Bench, r.Mode, r.SimInstrsPerSec, r.BytesPerOp, r.AllocsPerOp)
			results = append(results, r)
		}
	}

	blob, err := benchfmt.Marshal(results)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cibench: %v\n", err)
		os.Exit(1)
	}
	if *out == "-" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "cibench: %v\n", err)
		os.Exit(1)
	}
}
