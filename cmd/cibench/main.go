// Command cibench measures simulator throughput per machine mode and
// benchmark tier and writes a machine-readable baseline
// (BENCH_core.json by default), so the performance trajectory of the
// hot path is tracked in-repo from one change to the next. cmd/cigate
// compares a fresh run against the committed baseline in CI.
//
// Besides the per-mode/per-tier whole-run rows, cibench emits an
// "issue" micro row: the marginal throughput of a warmed steady-state
// ci-mode cycle slice, which isolates the scheduler hot loop (issue
// wakeup + replica arbitration) from setup cost so cigate catches
// scheduler regressions that whole-run noise would hide.
//
// Usage:
//
//	cibench                          # write BENCH_core.json (gcc + gcc.big + mcf.big)
//	cibench -o - -instr 100000       # print to stdout, bigger runs
//	cibench -bench gcc.big -o big.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"

	"civect/internal/benchfmt"
	"civect/internal/core"
	"civect/internal/workload"
)

func measure(mode core.Mode, bench string, instr uint64) (benchfmt.Result, error) {
	wl, err := workload.Spec(bench)
	if err != nil {
		return benchfmt.Result{}, err
	}
	var st *core.Stats
	var runErr error
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg := core.DefaultConfig(mode)
			cfg.MaxInstr = instr
			p, err := core.New(cfg, wl.Program, wl.NewMem())
			if err != nil {
				runErr = err
				return
			}
			if st, err = p.Run(); err != nil {
				runErr = err
				return
			}
		}
	})
	if runErr != nil {
		return benchfmt.Result{}, fmt.Errorf("%s/%v: %w", bench, mode, runErr)
	}
	ns := br.NsPerOp()
	return benchfmt.Result{
		Mode:            mode.String(),
		Bench:           bench,
		Instr:           instr,
		NsPerOp:         ns,
		SimInstrsPerSec: float64(st.Committed) / (float64(ns) * 1e-9),
		BytesPerOp:      br.AllocedBytesPerOp(),
		AllocsPerOp:     br.AllocsPerOp(),
		IPC:             st.IPC(),
		ReuseFraction:   st.ReuseFraction(),
	}, nil
}

// measureIssueStage micro-benchmarks the scheduler hot loop: a ci-mode
// gcc pipeline is warmed past the table-churn phase, then a fixed slice
// of cycles is timed. The slice's committed-instruction and reuse
// deltas are deterministic, so the gate's exact-match check pins the
// scheduler's semantics along with its speed; throughput over the slice
// isolates the per-cycle scheduling cost from setup and workload
// generation.
func measureIssueStage() (benchfmt.Result, error) {
	const warmCycles, sliceCycles = 20_000, 50_000
	wl, err := workload.SpecWithIters("gcc", 50_000_000)
	if err != nil {
		return benchfmt.Result{}, err
	}
	var committed, reused uint64
	var runErr error
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			p, err := core.New(core.DefaultConfig(core.ModeCI), wl.Program, wl.NewMem())
			if err != nil {
				runErr = err
				return
			}
			for c := 0; c < warmCycles; c++ {
				p.Step()
			}
			c0, r0 := p.Stats.Committed, p.Stats.CommittedReuse
			b.StartTimer()
			for c := 0; c < sliceCycles; c++ {
				p.Step()
			}
			b.StopTimer()
			if p.Halted() {
				runErr = fmt.Errorf("issue-stage slice ran past the workload's halt")
				return
			}
			committed = p.Stats.Committed - c0
			reused = p.Stats.CommittedReuse - r0
		}
	})
	if runErr != nil {
		return benchfmt.Result{}, fmt.Errorf("issue-stage micro: %w", runErr)
	}
	ns := br.NsPerOp()
	return benchfmt.Result{
		Mode:            "issue",
		Bench:           "gcc",
		Instr:           committed,
		NsPerOp:         ns,
		SimInstrsPerSec: float64(committed) / (float64(ns) * 1e-9),
		BytesPerOp:      br.AllocedBytesPerOp(),
		AllocsPerOp:     br.AllocsPerOp(),
		IPC:             float64(committed) / float64(sliceCycles),
		ReuseFraction:   float64(reused) / float64(committed),
	}, nil
}

func main() {
	out := flag.String("o", "BENCH_core.json", "output path ('-' for stdout)")
	bench := flag.String("bench", "gcc,gcc.big,mcf.big", "comma-separated benchmark workloads (both tiers allowed)")
	instr := flag.Uint64("instr", 30_000, "committed-instruction budget per simulation")
	micro := flag.Bool("micro", true, "include the issue-stage scheduler microbenchmark row")
	flag.Parse()

	modes := []core.Mode{core.ModeScalar, core.ModeWideBus, core.ModeCI, core.ModeCIIW, core.ModeVect}
	var results []benchfmt.Result
	for _, b := range strings.Split(*bench, ",") {
		for _, m := range modes {
			r, err := measure(m, b, *instr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cibench: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "cibench: %-12s %-6s %8.0f sim-instrs/s  %8d B/op  %5d allocs/op\n",
				r.Bench, r.Mode, r.SimInstrsPerSec, r.BytesPerOp, r.AllocsPerOp)
			results = append(results, r)
		}
	}
	if *micro {
		r, err := measureIssueStage()
		if err != nil {
			fmt.Fprintf(os.Stderr, "cibench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "cibench: %-12s %-6s %8.0f sim-instrs/s  %8d B/op  %5d allocs/op\n",
			r.Bench, r.Mode, r.SimInstrsPerSec, r.BytesPerOp, r.AllocsPerOp)
		results = append(results, r)
	}

	blob, err := benchfmt.Marshal(results)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cibench: %v\n", err)
		os.Exit(1)
	}
	if *out == "-" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "cibench: %v\n", err)
		os.Exit(1)
	}
}
