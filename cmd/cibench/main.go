// Command cibench measures simulator throughput per machine mode and
// benchmark tier and writes a machine-readable baseline
// (BENCH_core.json by default), so the performance trajectory of the
// hot path is tracked in-repo from one change to the next. cmd/cigate
// compares a fresh run against the committed baseline in CI.
//
// Simulations are built and run through the public civect/sim façade;
// rows run sequentially on purpose — each is a testing.Benchmark
// sample whose timing a concurrent session would pollute.
//
// Besides the per-mode/per-tier whole-run rows, cibench emits an
// "issue" micro row: the marginal throughput of a warmed steady-state
// ci-mode cycle slice, which isolates the scheduler hot loop (issue
// wakeup + replica arbitration) from setup cost so cigate catches
// scheduler regressions that whole-run noise would hide.
//
// Usage:
//
//	cibench                          # write BENCH_core.json (gcc + gcc.big + mcf.big)
//	cibench -o - -instr 100000       # print to stdout, bigger runs
//	cibench -bench gcc.big -o big.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"

	"civect/sim"
)

func measure(mode sim.Mode, bench string, instr uint64) (sim.BenchResult, error) {
	w, err := sim.Load(bench)
	if err != nil {
		return sim.BenchResult{}, err
	}
	var res *sim.Result
	var runErr error
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := sim.New(w, sim.WithMode(mode), sim.WithInstrBudget(instr))
			if err != nil {
				runErr = err
				return
			}
			if res, err = s.Run(context.Background()); err != nil {
				runErr = err
				return
			}
		}
	})
	if runErr != nil {
		return sim.BenchResult{}, fmt.Errorf("%s/%v: %w", bench, mode, runErr)
	}
	ns := br.NsPerOp()
	st := res.Stats
	return sim.BenchResult{
		Mode:            mode.String(),
		Bench:           bench,
		Instr:           instr,
		NsPerOp:         ns,
		SimInstrsPerSec: float64(st.Committed) / (float64(ns) * 1e-9),
		BytesPerOp:      br.AllocedBytesPerOp(),
		AllocsPerOp:     br.AllocsPerOp(),
		IPC:             st.IPC(),
		ReuseFraction:   st.ReuseFraction(),
	}, nil
}

// measureIssueStage micro-benchmarks the scheduler hot loop: a ci-mode
// gcc session is warmed past the table-churn phase, then a fixed slice
// of cycles is timed via Session.Step. The slice's committed-instruction
// and reuse deltas are deterministic, so the gate's exact-match check
// pins the scheduler's semantics along with its speed; throughput over
// the slice isolates the per-cycle scheduling cost from setup and
// workload generation.
func measureIssueStage() (sim.BenchResult, error) {
	const warmCycles, sliceCycles = 20_000, 50_000
	w, err := sim.LoadWithIters("gcc", 50_000_000)
	if err != nil {
		return sim.BenchResult{}, err
	}
	var committed, reused uint64
	var runErr error
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s, err := sim.New(w, sim.WithMode(sim.CI))
			if err != nil {
				runErr = err
				return
			}
			if _, err := s.Step(warmCycles); err != nil {
				runErr = err
				return
			}
			st0 := s.Stats()
			b.StartTimer()
			_, stepErr := s.Step(sliceCycles)
			b.StopTimer()
			if stepErr != nil {
				runErr = stepErr
				return
			}
			if s.Halted() {
				runErr = fmt.Errorf("issue-stage slice ran past the workload's halt")
				return
			}
			st1 := s.Stats()
			committed = st1.Committed - st0.Committed
			reused = st1.CommittedReuse - st0.CommittedReuse
		}
	})
	if runErr != nil {
		return sim.BenchResult{}, fmt.Errorf("issue-stage micro: %w", runErr)
	}
	ns := br.NsPerOp()
	return sim.BenchResult{
		Mode:            "issue",
		Bench:           "gcc",
		Instr:           committed,
		NsPerOp:         ns,
		SimInstrsPerSec: float64(committed) / (float64(ns) * 1e-9),
		BytesPerOp:      br.AllocedBytesPerOp(),
		AllocsPerOp:     br.AllocsPerOp(),
		IPC:             float64(committed) / float64(sliceCycles),
		ReuseFraction:   float64(reused) / float64(committed),
	}, nil
}

// measureBatchedSweep times a five-mode sweep of one workload run as a
// single batched sim.Set (width lanes in lockstep over the shared
// program): the throughput of the path ciexp's prefetch takes, as
// opposed to the per-session rows above. The row's stats are the
// aggregate over all five lanes; cigate's exact-match check pins the
// batched engine's semantics along with its speed.
func measureBatchedSweep(bench string, instr uint64, width int) (sim.BenchResult, error) {
	w, err := sim.Load(bench)
	if err != nil {
		return sim.BenchResult{}, err
	}
	points := make([]sim.PointOpts, len(sim.Modes()))
	for i, m := range sim.Modes() {
		points[i] = sim.PointOpts{sim.WithMode(m), sim.WithInstrBudget(instr)}
	}
	var committed, reuseHits, cycles uint64
	var runErr error
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			set, err := sim.NewSet(w, points...)
			if err != nil {
				runErr = err
				return
			}
			set.Width = width
			set.Workers = 1
			results, err := set.Run(context.Background())
			if err != nil {
				runErr = err
				return
			}
			committed, reuseHits, cycles = 0, 0, 0
			for _, res := range results {
				committed += res.Stats.Committed
				reuseHits += res.Stats.CommittedReuse
				cycles += res.Stats.Cycles
			}
		}
	})
	if runErr != nil {
		return sim.BenchResult{}, fmt.Errorf("batched sweep %s: %w", bench, runErr)
	}
	ns := br.NsPerOp()
	return sim.BenchResult{
		Mode:            "sweep",
		Bench:           bench,
		Instr:           committed,
		NsPerOp:         ns,
		SimInstrsPerSec: float64(committed) / (float64(ns) * 1e-9),
		BytesPerOp:      br.AllocedBytesPerOp(),
		AllocsPerOp:     br.AllocsPerOp(),
		IPC:             float64(committed) / float64(cycles),
		ReuseFraction:   float64(reuseHits) / float64(committed),
	}, nil
}

// measureSampled times the sampled-simulation pipeline end to end
// (BBV profile, clustering, functional warming, detailed samples,
// stitching) through the façade. SimInstrsPerSec reports
// estimated-stream instructions per wall second — the effective rate
// sampling buys, which is what the ultra tier's affordability rests
// on — and IPC/ReuseFraction pin the stitched estimates, which are
// deterministic, for cigate's exact-match check. The row is fixed on
// gcc.big over a 200k-instruction stream so the phase structure the
// clustering targets is actually present.
func measureSampled() (sim.BenchResult, error) {
	const bench, instr = "gcc.big", 200_000
	w, err := sim.Load(bench)
	if err != nil {
		return sim.BenchResult{}, err
	}
	var res *sim.Result
	var runErr error
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := sim.New(w, sim.WithMode(sim.CI), sim.WithInstrBudget(instr),
				sim.WithSampling(sim.SamplingConfig{}))
			if err != nil {
				runErr = err
				return
			}
			if res, err = s.Run(context.Background()); err != nil {
				runErr = err
				return
			}
		}
	})
	if runErr != nil {
		return sim.BenchResult{}, fmt.Errorf("sampled %s: %w", bench, runErr)
	}
	sr := res.Sampled
	var ipc, reuse float64
	for _, st := range sr.Stats {
		switch st.Name {
		case "ipc":
			ipc = st.Mean
		case "reuse_frac":
			reuse = st.Mean
		}
	}
	ns := br.NsPerOp()
	return sim.BenchResult{
		Mode:            "sampled",
		Bench:           bench,
		Instr:           sr.TotalInstr,
		NsPerOp:         ns,
		SimInstrsPerSec: float64(sr.TotalInstr) / (float64(ns) * 1e-9),
		BytesPerOp:      br.AllocedBytesPerOp(),
		AllocsPerOp:     br.AllocsPerOp(),
		IPC:             ipc,
		ReuseFraction:   reuse,
	}, nil
}

func main() {
	out := flag.String("o", "BENCH_core.json", "output path ('-' for stdout)")
	bench := flag.String("bench", "gcc,gcc.big,mcf.big", "comma-separated benchmark workloads (both tiers allowed)")
	instr := flag.Uint64("instr", 30_000, "committed-instruction budget per simulation")
	micro := flag.Bool("micro", true, "include the issue-stage scheduler microbenchmark row")
	batch := flag.Int("batch", 0, "lockstep width of the batched-sweep row (0 auto, 1 sequential)")
	flag.Parse()

	var results []sim.BenchResult
	for _, b := range strings.Split(*bench, ",") {
		for _, m := range sim.Modes() {
			r, err := measure(m, b, *instr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cibench: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "cibench: %-12s %-6s %8.0f sim-instrs/s  %8d B/op  %5d allocs/op\n",
				r.Bench, r.Mode, r.SimInstrsPerSec, r.BytesPerOp, r.AllocsPerOp)
			results = append(results, r)
		}
	}
	if *micro {
		r, err := measureIssueStage()
		if err != nil {
			fmt.Fprintf(os.Stderr, "cibench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "cibench: %-12s %-6s %8.0f sim-instrs/s  %8d B/op  %5d allocs/op\n",
			r.Bench, r.Mode, r.SimInstrsPerSec, r.BytesPerOp, r.AllocsPerOp)
		results = append(results, r)
	}
	{
		first := strings.Split(*bench, ",")[0]
		r, err := measureBatchedSweep(first, *instr, *batch)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cibench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "cibench: %-12s %-6s %8.0f sim-instrs/s  %8d B/op  %5d allocs/op\n",
			r.Bench, r.Mode, r.SimInstrsPerSec, r.BytesPerOp, r.AllocsPerOp)
		results = append(results, r)
	}
	{
		r, err := measureSampled()
		if err != nil {
			fmt.Fprintf(os.Stderr, "cibench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "cibench: %-12s %-6s %8.0f sim-instrs/s  %8d B/op  %5d allocs/op\n",
			r.Bench, r.Mode, r.SimInstrsPerSec, r.BytesPerOp, r.AllocsPerOp)
		results = append(results, r)
	}

	blob, err := sim.MarshalBenchResults(results)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cibench: %v\n", err)
		os.Exit(1)
	}
	if *out == "-" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "cibench: %v\n", err)
		os.Exit(1)
	}
}
