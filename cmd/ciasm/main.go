// Command ciasm assembles a program and runs it on the architectural
// emulator (via the public civect/sim workload API), printing the
// disassembly and final register state — handy for writing kernels
// before feeding them to the timing simulator.
//
// Usage:
//
//	ciasm program.s            # assemble + run
//	ciasm -dis program.s       # assemble + disassemble only
//	echo 'movi r1, 7
//	halt' | ciasm -            # read from stdin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"civect/sim"
)

func main() {
	disOnly := flag.Bool("dis", false, "disassemble without running")
	maxInstr := flag.Uint64("max", 10_000_000, "instruction budget")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ciasm [-dis] [-max N] <file.s | ->")
		os.Exit(2)
	}
	path := flag.Arg(0)
	var src []byte
	var err error
	if path == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(path)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ciasm:", err)
		os.Exit(1)
	}

	w, err := sim.Custom(path, string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "ciasm:", err)
		os.Exit(1)
	}
	fmt.Print(w.Disassemble())
	if *disOnly {
		return
	}

	arch, err := w.Emulate(*maxInstr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ciasm:", err)
		os.Exit(1)
	}
	fmt.Printf("\nhalted after %d instructions; non-zero registers:\n", arch.Executed)
	for r := 0; r < sim.NumLogical; r++ {
		if arch.Regs[r] != 0 {
			fmt.Printf("  R%-2d = %d (%#x)\n", r, arch.Regs[r], arch.Regs[r])
		}
	}
}
