// Command ciserve runs the civect simulation-as-a-service daemon: an
// HTTP API (internal/serve) that accepts simulation jobs as JSON,
// streams progress over SSE, and serves results — with backpressure,
// a circuit breaker, idempotent replay and graceful drain built in.
//
// Usage:
//
//	ciserve -addr :8707
//	ciserve -addr :8707 -trace-dir /var/lib/civect/traces
//	ciserve -addr :8707 -ckpt-dir /var/lib/civect/ckpts
//	ciserve -doctor
//
// On SIGTERM or SIGINT the daemon stops admitting jobs (503), gives
// in-flight work until -drain-timeout to finish or checkpoint a
// partial result, then exits 0 on a clean drain. With -ckpt-dir, jobs
// submitted with a checkpoint_key also persist their machine state at
// the cut, and resubmitting the same spec under the same key resumes
// from it.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"civect/internal/serve"
	"civect/internal/serve/faultinject"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8707", "listen address")
	queue := flag.Int("queue", 64, "bounded job-queue depth (backpressure: 429 when full)")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second,
		"how long in-flight jobs get to finish on SIGTERM before being checkpointed")
	traceDir := flag.String("trace-dir", "", "directory for per-job cycle-trace journal artifacts (empty = tracing disabled)")
	ckptDir := flag.String("ckpt-dir", "", "directory for resumable-job checkpoints (empty = checkpoint_key disabled)")
	heapLimit := flag.Uint64("heap-limit", 0, "circuit breaker: live-heap bytes watermark (0 = disabled)")
	queueWait := flag.Duration("queue-wait-limit", 0, "circuit breaker: queue-wait watermark (0 = disabled)")
	failureLimit := flag.Int("failure-limit", 0, "circuit breaker: consecutive job failures watermark (0 = disabled)")
	faults := flag.String("faults", "", `deterministic fault-injection plan, e.g. "seed=7,panic=0.05,slow=0.1:8ms,cancel=0.02,tracefail=0.5" (chaos drills only)`)
	doctor := flag.Bool("doctor", false, "run the preflight checks, print them, and exit")
	flag.Parse()

	logf := log.New(os.Stderr, "ciserve: ", log.LstdFlags).Printf

	cfg := serve.Config{
		QueueDepth:    *queue,
		Workers:       *workers,
		DrainTimeout:  *drainTimeout,
		TraceDir:      *traceDir,
		CheckpointDir: *ckptDir,
		Breaker: serve.BreakerConfig{
			HeapLimitBytes: *heapLimit,
			QueueWaitLimit: *queueWait,
			FailureLimit:   *failureLimit,
		},
		Logf: logf,
	}
	if *faults != "" {
		plan, err := faultinject.ParsePlan(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ciserve: -faults: %v\n", err)
			return 2
		}
		cfg.Faults = plan
		logf("fault injection armed: %s", *faults)
	}

	// Preflight before the listener opens: a daemon that cannot load
	// workloads or run a smoke session must refuse to serve, not fail
	// its first job.
	checks, perr := serve.Preflight(context.Background(), cfg)
	if *doctor {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(checks)
		if perr != nil {
			return 1
		}
		return 0
	}
	for _, c := range checks {
		status := "ok"
		if !c.OK {
			status = "FAIL"
		}
		logf("preflight %-17s %-4s %s (%v)", c.Name, status, c.Detail, c.Elapsed.Round(time.Millisecond))
	}
	if perr != nil {
		fmt.Fprintf(os.Stderr, "ciserve: %v\n", perr)
		return 1
	}

	s := serve.New(cfg)
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	logf("listening on %s (%d workers, queue %d)", *addr, s.Config().Workers, s.Config().QueueDepth)

	select {
	case sig := <-sigs:
		logf("%s: draining (in-flight jobs get %v)", sig, s.Config().DrainTimeout)
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "ciserve: %v\n", err)
		s.Close()
		return 1
	}

	// Drain order: job layer first so /healthz flips to draining and
	// submissions 503 while in-flight jobs finish; the listener last so
	// clients can still poll results during the drain.
	drainErr := s.Drain(context.Background())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	httpSrv.Shutdown(shutdownCtx)

	if drainErr != nil {
		logf("drain cut short: %v", drainErr)
		return 1
	}
	logf("drained cleanly")
	return 0
}
