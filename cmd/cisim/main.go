// Command cisim runs a single simulation and prints its statistics.
// It is a thin CLI over the public civect/sim API.
//
// Usage:
//
//	cisim -bench gcc -mode ci -ports 1 -regs 256 -instr 200000
//	cisim -bench mcf.big -mode ci -json
//	cisim -dump-config
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"civect/sim"
)

func main() {
	bench := flag.String("bench", "gcc", "benchmark name (one of the SpecInt2000 stand-ins, either tier)")
	modeStr := flag.String("mode", "ci", "machine mode: scal, wb, ci, ci-iw, vect")
	engineStr := flag.String("engine", "fast-forward", "simulation engine: fast-forward, event, naive")
	ports := flag.Int("ports", 1, "L1 data cache ports")
	regs := flag.Int("regs", 256, "physical registers (0 = unbounded)")
	replicas := flag.Int("replicas", 4, "replicas per vectorized instruction")
	stridedPCs := flag.Int("stridedpcs", 2, "stridedPCs propagated per rename entry")
	specMem := flag.Int("specmem", 0, "speculative data memory positions (0 = none)")
	specMemLat := flag.Int("specmemlat", 2, "speculative data memory latency")
	noDAEC := flag.Bool("nodaec", false, "disable the DAEC register reclamation")
	instr := flag.Uint64("instr", 200_000, "committed-instruction budget")
	jsonOut := flag.Bool("json", false, "emit the result as JSON (the versioned benchfmt-based schema)")
	dumpConfig := flag.Bool("dump-config", false, "print the Table 1 configuration and exit")
	flag.Parse()

	if *dumpConfig {
		cfg := sim.DefaultConfig(sim.CI)
		fmt.Printf("fetch/decode/issue/commit width: %d/%d/%d/%d\n",
			cfg.FetchWidth, cfg.DecodeWidth, cfg.IssueWidth, cfg.CommitWidth)
		fmt.Printf("instruction window: %d, LSQ: %d\n", cfg.WindowSize, cfg.LSQSize)
		fmt.Printf("FUs: %d simple int (lat %d), %d int mul/div (lat %d/%d)\n",
			cfg.IntALUs, cfg.LatIntALU, cfg.IntMulDivs, cfg.LatIntMul, cfg.LatIntDiv)
		fmt.Printf("gshare: %d entries\n", cfg.GshareEntries)
		fmt.Printf("L1I: %dKB  L1D: %dKB  L2: %dKB  L3: %dMB\n",
			cfg.Hier.L1I.SizeBytes>>10, cfg.Hier.L1D.SizeBytes>>10,
			cfg.Hier.L2.SizeBytes>>10, cfg.Hier.L3.SizeBytes>>20)
		fmt.Printf("stride predictor: %d sets x %d  SRSMT: %d sets x %d  MBS: %d sets x %d  NRBQ: %d\n",
			cfg.StrideSets, cfg.StrideAssoc, cfg.SRSMTSets, cfg.SRSMTAssoc,
			cfg.MBSSets, cfg.MBSAssoc, cfg.NRBQEntries)
		return
	}

	mode, err := sim.ParseMode(*modeStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cisim: unknown mode %q\n", *modeStr)
		os.Exit(2)
	}
	engine, err := sim.ParseEngine(*engineStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cisim:", err)
		os.Exit(2)
	}
	w, err := sim.Load(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cisim:", err)
		os.Exit(2)
	}

	s, err := sim.New(w,
		sim.WithMode(mode),
		sim.WithEngine(engine),
		sim.WithPorts(*ports),
		sim.WithRegs(*regs),
		sim.WithReplicas(*replicas),
		sim.WithStridedPCs(*stridedPCs),
		sim.WithSpecMem(*specMem),
		sim.WithSpecMemLatency(*specMemLat),
		sim.WithDAEC(!*noDAEC),
		sim.WithInstrBudget(*instr),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cisim:", err)
		os.Exit(1)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		fmt.Fprintln(os.Stderr, "cisim:", err)
		os.Exit(1)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "cisim:", err)
			os.Exit(1)
		}
		return
	}

	st := res.Stats
	fmt.Printf("%s / %s / %d port(s) / %s regs\n", *bench, mode, *ports, regLabel(*regs))
	fmt.Printf("cycles             %12d\n", st.Cycles)
	fmt.Printf("committed          %12d   IPC %.3f\n", st.Committed, st.IPC())
	fmt.Printf("committed reuse    %12d   (%.2f%% of committed)\n", st.CommittedReuse, 100*st.ReuseFraction())
	fmt.Printf("fetched            %12d\n", st.Fetched)
	fmt.Printf("squashed (specBP)  %12d\n", st.SquashedBP)
	fmt.Printf("replicas (specCI)  %12d\n", st.ReplicasDispatched)
	fmt.Printf("branches           %12d   cond %d\n", st.Branches, st.CondBranches)
	fmt.Printf("mispredicts        %12d   rate %.2f%%   hard %d\n",
		st.Mispredicts, 100*st.MispredictRate(), st.HardMispredicts)
	fmt.Printf("episodes selected  %12d   reused %d\n", st.EpisodesSelected, st.EpisodesReused)
	fmt.Printf("CI selected instrs %12d\n", st.CISelected)
	fmt.Printf("vectorized entries %12d   validation fails %d   replays %d\n",
		st.VectorizedEntries, st.ValidationFails, st.Replays)
	fmt.Printf("  fail breakdown   stride=%d vec=%d self=%d scalar=%d slot=%d addr=%d\n",
		st.ValFailStride, st.ValFailVec, st.ValFailSelf, st.ValFailScalar, st.ValFailSlot, st.ValFailAddr)
	fmt.Printf("  replay breakdown load=%d arith=%d\n", st.ReplayLoad, st.ReplayArith)
	fmt.Printf("iw captured        %12d\n", st.IWCaptured)
	fmt.Printf("loads/stores       %12d / %d   store conflicts %d (%.2f%%)\n",
		st.Loads, st.Stores, st.StoreConflicts, 100*st.StoreConflictRate())
	fmt.Printf("avg stridedPCs     %12.2f\n", st.AvgStridedPCs())
	fmt.Printf("regs in use        %12.1f avg   %d peak\n", st.RegAvgInUse, st.RegPeak)
	fmt.Printf("L1D accesses       %12d   miss rate %.2f%%\n", st.L1D.Accesses, 100*st.L1D.MissRate())
	fmt.Printf("L1I accesses       %12d   miss rate %.2f%%\n", st.L1I.Accesses, 100*st.L1I.MissRate())
	fmt.Printf("L2 accesses        %12d   L3 accesses %d\n", st.L2.Accesses, st.L3.Accesses)
	fmt.Printf("specmem copies     %12d\n", st.SpecMemCopies)
}

func regLabel(r int) string {
	if r == 0 {
		return "inf"
	}
	return fmt.Sprint(r)
}
