// Command cimerge joins the per-shard result files of a sharded sweep
// (ciexp -shard k/n -json) back into the complete paper tables. It is
// a pure table-merging tool: no simulation runs here (the shards were
// produced by ciexp over the civect/sim façade), so it speaks to the
// sweep subsystem only.
//
// Merging validates exact coverage against the deterministic sweep
// plan recomputed from the shard headers: every cell must be present
// exactly once, no overlap, nothing outside the plan — so a dropped or
// duplicated shard fails loudly instead of producing subtly wrong
// tables. The regenerated output is byte-identical to an unsharded
// ciexp run with the same flags (text, or JSON with -json).
//
// Usage:
//
//	ciexp -shard 1/3 -json > s1.json   # on machine 1
//	ciexp -shard 2/3 -json > s2.json   # on machine 2
//	ciexp -shard 3/3 -json > s3.json   # on machine 3
//	cimerge s1.json s2.json s3.json    # anywhere
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"civect/internal/sweep"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit the tables as JSON instead of aligned text")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: cimerge [-json] shard1.json shard2.json ...")
		os.Exit(2)
	}
	files := make([]*sweep.File, 0, flag.NArg())
	for _, path := range flag.Args() {
		f, err := sweep.Load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cimerge: %v\n", err)
			os.Exit(2)
		}
		files = append(files, f)
	}

	merged, err := sweep.Merge(files)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cimerge: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "cimerge: coverage complete: %d cells from %d shard file(s)\n",
		len(merged.Cells), len(files))

	tables, err := sweep.Tables(merged)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cimerge: %v\n", err)
		os.Exit(1)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tables); err != nil {
			fmt.Fprintf(os.Stderr, "cimerge: %v\n", err)
			os.Exit(1)
		}
		return
	}
	for _, t := range tables {
		fmt.Println(t)
	}
}
