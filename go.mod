module civect

go 1.22
