module civect

go 1.24

// The civet lint suite (cmd/civet, internal/lint) is built on the
// go/analysis framework. The dependency is vendored (see vendor/) —
// the exact subset of packages the unitchecker driver needs, at the
// same x/tools pin the go1.24 toolchain itself vendors — so the
// tooling builds reproducibly offline in CI and air-gapped
// containers. The `tool` directive makes `go tool civet` work
// without a separate install step.
require golang.org/x/tools v0.28.1-0.20250131145412-98746475647e

tool civect/cmd/civet
